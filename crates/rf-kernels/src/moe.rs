//! MoE routing kernels: scoring GEMM + softmax + top-k (§2.2, Appendix A.2.2).
//!
//! The routing pipeline computes expert scores `S = X W` (`[s, en]`), applies a
//! softmax over the expert axis, and selects the top-k experts per token. The
//! unfused pipeline materialises the score and probability matrices; the fused
//! kernel streams over the experts of each token once, maintaining the running
//! max, the running rescaled sum and the running top-k set simultaneously, and
//! normalises only the selected entries at the end (softmax preserves order, so
//! top-k can be applied to raw scores and normalised afterwards).

use rf_workloads::{Matrix, MoeConfig};

use crate::softmax::softmax_rows;
use crate::topk::{topk_streaming, TopKEntry};

/// The routing decision for one token: the selected experts and their
/// normalised probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingDecision {
    /// Indices of the selected experts, in decreasing probability order.
    pub experts: Vec<usize>,
    /// Normalised probabilities of the selected experts (softmax over all
    /// experts, restricted to the selected ones).
    pub probs: Vec<f64>,
}

/// Computes the expert score matrix `X W`.
pub fn routing_scores(x: &Matrix, w: &Matrix) -> Matrix {
    x.matmul(w)
}

/// Unfused routing: GEMM → full softmax matrix → top-k per row.
pub fn route_naive(x: &Matrix, w: &Matrix, topk: usize) -> Vec<RoutingDecision> {
    let scores = routing_scores(x, w);
    let probs = softmax_rows(&scores);
    (0..scores.rows())
        .map(|r| {
            let top = topk_streaming(probs.row(r), topk);
            RoutingDecision {
                experts: top.iter().map(|e| e.index).collect(),
                probs: top.iter().map(|e| e.value).collect(),
            }
        })
        .collect()
}

/// Fused routing: for each token, a single streaming pass over the experts
/// computes the softmax statistics and the top-k set together; only the
/// selected entries are normalised at the end.
pub fn route_fused(x: &Matrix, w: &Matrix, topk: usize) -> Vec<RoutingDecision> {
    assert_eq!(
        x.cols(),
        w.rows(),
        "activation and routing weight shapes must agree"
    );
    let tokens = x.rows();
    let experts = w.cols();
    assert!(
        topk <= experts,
        "topk must not exceed the number of experts"
    );
    let mut decisions = Vec::with_capacity(tokens);
    for t in 0..tokens {
        let mut running_max = f64::NEG_INFINITY;
        let mut running_sum = 0.0;
        let mut best: Vec<TopKEntry> = Vec::with_capacity(topk + 1);
        for e in 0..experts {
            // The scoring GEMM for this (token, expert) pair is itself the
            // innermost reduction of the cascade; it streams over the hidden
            // dimension without materialising the score matrix.
            let mut score = 0.0;
            for h in 0..x.cols() {
                score += x.get(t, h) * w.get(h, e);
            }
            // Incremental softmax statistics (Eq. 37).
            let new_max = running_max.max(score);
            running_sum = running_sum * (running_max - new_max).exp() + (score - new_max).exp();
            running_max = new_max;
            // Streaming top-k over the raw scores (order-preserving).
            let pos = best
                .iter()
                .position(|b| score > b.value || (score == b.value && e < b.index))
                .unwrap_or(best.len());
            best.insert(
                pos,
                TopKEntry {
                    index: e,
                    value: score,
                },
            );
            if best.len() > topk {
                best.pop();
            }
        }
        let probs = best
            .iter()
            .map(|b| (b.value - running_max).exp() / running_sum)
            .collect();
        decisions.push(RoutingDecision {
            experts: best.iter().map(|b| b.index).collect(),
            probs,
        });
    }
    decisions
}

/// Generates deterministic inputs for a routing configuration and runs a
/// kernel over them. Used by the benchmarks; `scale` shrinks the problem for
/// quick runs (`scale = 1` reproduces the paper configuration).
pub fn run_config<F>(config: &MoeConfig, scale: usize, seed: u64, kernel: F) -> Vec<RoutingDecision>
where
    F: Fn(&Matrix, &Matrix, usize) -> Vec<RoutingDecision>,
{
    let s = (config.s / scale.max(1)).max(1);
    let hd = (config.hd / scale.max(1)).max(config.topk.max(4));
    let x = Matrix::random(s, hd, seed, -1.0, 1.0);
    let w = Matrix::random(hd, config.en, seed + 1, -1.0, 1.0);
    kernel(&x, &w, config.topk)
}

/// Compares two routing outputs: the expert sets must match exactly and the
/// probabilities must agree within `tolerance`.
pub fn decisions_equal(a: &[RoutingDecision], b: &[RoutingDecision], tolerance: f64) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.experts == y.experts
                && x.probs
                    .iter()
                    .zip(&y.probs)
                    .all(|(p, q)| (p - q).abs() <= tolerance * (1.0 + p.abs()))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rf_workloads::moe::moe_tiny;

    #[test]
    fn fused_matches_naive_on_tiny_config() {
        let config = moe_tiny();
        let naive = run_config(&config, 1, 7, route_naive);
        let fused = run_config(&config, 1, 7, route_fused);
        assert!(decisions_equal(&naive, &fused, 1e-9));
    }

    #[test]
    fn probabilities_are_sorted_and_bounded() {
        let x = Matrix::random(8, 16, 3, -1.0, 1.0);
        let w = Matrix::random(16, 32, 4, -1.0, 1.0);
        for d in route_fused(&x, &w, 4) {
            assert_eq!(d.experts.len(), 4);
            for window in d.probs.windows(2) {
                assert!(window[0] >= window[1]);
            }
            assert!(d.probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
            let total: f64 = d.probs.iter().sum();
            assert!(total <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn topk_one_selects_argmax() {
        let x = Matrix::random(4, 8, 11, -1.0, 1.0);
        let w = Matrix::random(8, 16, 12, -1.0, 1.0);
        let scores = routing_scores(&x, &w);
        let decisions = route_fused(&x, &w, 1);
        for (r, d) in decisions.iter().enumerate() {
            let argmax = (0..scores.cols())
                .max_by(|&a, &b| scores.get(r, a).partial_cmp(&scores.get(r, b)).unwrap())
                .unwrap();
            assert_eq!(d.experts, vec![argmax]);
        }
    }

    #[test]
    #[should_panic(expected = "topk must not exceed")]
    fn oversized_topk_panics() {
        let x = Matrix::random(1, 4, 1, -1.0, 1.0);
        let w = Matrix::random(4, 2, 2, -1.0, 1.0);
        route_fused(&x, &w, 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_fused_matches_naive(
            seed in 0u64..200,
            tokens in 1usize..10,
            hidden in 1usize..12,
            experts in 2usize..24,
            topk in 1usize..6,
        ) {
            prop_assume!(topk <= experts);
            let x = Matrix::random(tokens, hidden, seed, -1.0, 1.0);
            let w = Matrix::random(hidden, experts, seed + 1, -1.0, 1.0);
            let naive = route_naive(&x, &w, topk);
            let fused = route_fused(&x, &w, topk);
            prop_assert!(decisions_equal(&naive, &fused, 1e-8));
        }
    }
}
