//! Reference and fused CPU numeric kernels for every evaluated workload.
//!
//! The paper's evaluation compares three classes of implementations:
//! unfused baselines (PyTorch Eager style, one pass over memory per operator),
//! hand-optimized fused kernels (FlashAttention / FlashDecoding style), and the
//! kernels RedFuser generates. This crate provides CPU ports of all of them so
//! that
//!
//! * the generated tile programs and fusion plans have *numeric correctness
//!   oracles* (every integration test compares against the naive kernels), and
//! * the Criterion benchmarks have a real measured-time component in addition
//!   to the analytical GPU model.
//!
//! Modules:
//!
//! * [`softmax`] — safe softmax, three-pass vs single-pass online form.
//! * [`attention`] — naive attention, FlashAttention-style tiling and
//!   FlashDecoding-style split-KV decoding.
//! * [`moe`] — MoE routing: scoring GEMM + softmax + top-k, unfused and fused.
//! * [`quant`] — FP8 per-token quantization + GEMM, unfused and fused.
//! * [`nonml`] — variance and moment of inertia, multi-pass and fused.
//! * [`topk`] — top-k selection helpers shared by the MoE kernels.

pub mod attention;
pub mod moe;
pub mod nonml;
pub mod quant;
pub mod softmax;
pub mod topk;

/// Relative tolerance used by the kernel test suites when comparing fused and
/// unfused results.
pub const KERNEL_TOLERANCE: f64 = 1e-9;

/// Asserts that two slices agree element-wise within a relative tolerance.
///
/// # Panics
///
/// Panics (with the position of the first mismatch) if the slices differ in
/// length or any element pair differs by more than the tolerance.
pub fn assert_close(actual: &[f64], expected: &[f64], tolerance: f64) {
    assert_eq!(actual.len(), expected.len(), "length mismatch");
    for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
        let scale = 1.0 + e.abs().max(a.abs());
        assert!(
            (a - e).abs() <= tolerance * scale,
            "mismatch at index {i}: actual={a}, expected={e}"
        );
    }
}

/// Returns the maximum relative element-wise difference between two slices.
pub fn max_rel_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / (1.0 + x.abs().max(y.abs())))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assert_close_accepts_equal_slices() {
        assert_close(&[1.0, 2.0], &[1.0, 2.0], 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatch at index 1")]
    fn assert_close_reports_position() {
        assert_close(&[1.0, 2.0], &[1.0, 3.0], 1e-12);
    }

    #[test]
    fn max_rel_diff_is_zero_for_identical() {
        assert_eq!(max_rel_diff(&[1.0, -2.0], &[1.0, -2.0]), 0.0);
        assert!(max_rel_diff(&[1.0], &[1.1]) > 0.0);
    }
}
