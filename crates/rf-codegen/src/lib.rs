//! Code generation: lowering fusion plans to tile programs, the execution
//! strategies, and the auto-tuner.
//!
//! This crate is the back half of the RedFuser pipeline (§4.3–4.4): it takes
//! the fused computation derived by `rf-fusion`, builds tile-level programs
//! (`rf-tile`), chooses between the **Single-Segment** and **Multi-Segment**
//! strategies and between **incremental** and **non-incremental** computation,
//! applies the fusion level (intra-thread / intra-warp / intra-block /
//! inter-block) and auto-tunes the launch parameters against the analytical
//! GPU model (`rf-gpusim`).
//!
//! Modules:
//!
//! * [`strategy`] — the strategy / mode / fusion-level enums and their
//!   feasibility rules.
//! * [`lower`] — workload-specific lowering to tile programs (the attention
//!   lowering reproduces Figures 12b and 13b).
//! * [`tuner`] — the empirical search space of §4.4 and the runtime
//!   configuration selection.
//! * [`compile`] — the top-level `compile_workload` entry point used by the
//!   benchmarks and examples.
//! * [`level`] — the fusion-level latency model behind Figure 6a and the
//!   incremental/non-incremental comparison behind Figure 6b.

pub mod compile;
pub mod level;
pub mod lower;
pub mod strategy;
pub mod tuner;

pub use compile::{
    arch_fingerprint, compile_workload, compile_workload_arc, compile_workload_with,
    executable_program, CompileOptions, CompileTiming, CompiledKernel, PlanKey, Workload,
};
pub use level::{fusion_level_latency, incremental_sweep, FusionLevelReport, IncrementalPoint};
pub use lower::{attention_program, cascade_program, AttentionShape};
pub use strategy::{FusionLevel, Mode, Strategy};
pub use tuner::{
    AutoTuner, PointFootprint, SearchMode, TuneHooks, TuningCache, TuningCacheStats, TuningChoice,
    TuningPoint, TuningSpace, DEFAULT_BEAM_WIDTH,
};

#[cfg(test)]
mod tests {
    use super::*;
    use rf_gpusim::GpuArch;

    #[test]
    fn compile_produces_finite_latency() {
        let arch = GpuArch::a10();
        let workload = Workload::Softmax {
            rows: 1024,
            len: 4096,
        };
        let compiled = compile_workload(&workload, &arch);
        assert!(compiled.latency_us.is_finite());
        assert!(compiled.latency_us > 0.0);
    }
}
