//! The auto-tuner (§4.4): an empirical search space over block tile size,
//! threads per block, software-pipeline depth and (for the Multi-Segment
//! strategy) the number of segments, evaluated against the analytical GPU
//! model.

use rf_gpusim::{estimate_latency, GpuArch, KernelProfile};

/// One point of the tuning search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TuningPoint {
    /// Rows (query rows / tokens) per block tile.
    pub block_rows: usize,
    /// Reduction-axis elements per main-loop iteration.
    pub block_axis: usize,
    /// Threads per block.
    pub threads: u32,
    /// Software-pipeline depth.
    pub pipeline_depth: u32,
    /// Number of axis segments (1 = Single-Segment strategy).
    pub segments: u32,
}

/// The search space. The defaults mirror the paper's empirical space: a few
/// power-of-two tile sizes, warp-multiple thread counts, shallow pipelines and
/// small split factors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuningSpace {
    /// Candidate block-row tile sizes.
    pub block_rows: Vec<usize>,
    /// Candidate block-axis tile sizes.
    pub block_axis: Vec<usize>,
    /// Candidate thread counts.
    pub threads: Vec<u32>,
    /// Candidate pipeline depths.
    pub pipeline_depths: Vec<u32>,
    /// Candidate segment counts.
    pub segments: Vec<u32>,
}

impl Default for TuningSpace {
    fn default() -> Self {
        TuningSpace {
            block_rows: vec![16, 32, 64, 128],
            block_axis: vec![16, 32, 64, 128, 256],
            threads: vec![128, 256],
            pipeline_depths: vec![1, 2, 3],
            segments: vec![1, 2, 4, 8, 16, 32, 64],
        }
    }
}

impl TuningSpace {
    /// Enumerates every point of the space.
    pub fn points(&self) -> Vec<TuningPoint> {
        let mut out = Vec::new();
        for &block_rows in &self.block_rows {
            for &block_axis in &self.block_axis {
                for &threads in &self.threads {
                    for &pipeline_depth in &self.pipeline_depths {
                        for &segments in &self.segments {
                            out.push(TuningPoint {
                                block_rows,
                                block_axis,
                                threads,
                                pipeline_depth,
                                segments,
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// The winning configuration and its estimated latency.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningChoice {
    /// The chosen point.
    pub point: TuningPoint,
    /// Its kernel profile.
    pub profile: KernelProfile,
    /// Estimated latency in microseconds.
    pub latency_us: f64,
    /// Number of candidates evaluated.
    pub evaluated: usize,
}

/// Exhaustively evaluates a search space against one architecture.
#[derive(Debug, Clone)]
pub struct AutoTuner {
    arch: GpuArch,
    space: TuningSpace,
}

impl AutoTuner {
    /// Creates a tuner for one architecture with the default search space.
    pub fn new(arch: GpuArch) -> Self {
        AutoTuner {
            arch,
            space: TuningSpace::default(),
        }
    }

    /// Replaces the search space.
    pub fn with_space(mut self, space: TuningSpace) -> Self {
        self.space = space;
        self
    }

    /// The architecture being tuned for.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// Evaluates `build` at every point and returns the lowest-latency choice.
    ///
    /// # Panics
    ///
    /// Panics if the search space is empty or every candidate is infeasible
    /// (infinite latency) — callers always include at least one incremental
    /// Single-Segment point, which is feasible on every supported GPU.
    pub fn tune<F>(&self, build: F) -> TuningChoice
    where
        F: Fn(&TuningPoint) -> KernelProfile,
    {
        let points = self.space.points();
        assert!(!points.is_empty(), "tuning space must not be empty");
        let mut best: Option<TuningChoice> = None;
        let evaluated = points.len();
        for point in points {
            let profile = build(&point);
            let latency = estimate_latency(&self.arch, &profile).total_us;
            if best
                .as_ref()
                .map(|b| latency < b.latency_us)
                .unwrap_or(true)
            {
                best = Some(TuningChoice {
                    point,
                    profile,
                    latency_us: latency,
                    evaluated,
                });
            }
        }
        let choice = best.expect("at least one tuning point evaluated");
        assert!(
            choice.latency_us.is_finite(),
            "every candidate configuration was infeasible on {}",
            self.arch.name
        );
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_enumerates_cartesian_product() {
        let space = TuningSpace::default();
        assert_eq!(space.points().len(), 4 * 5 * 2 * 3 * 7);
    }

    #[test]
    fn tuner_picks_the_fastest_candidate() {
        let tuner = AutoTuner::new(GpuArch::a10());
        let choice = tuner.tune(|p| KernelProfile {
            // Smaller block_axis is artificially made cheaper here.
            flops: (p.block_axis as u64) << 22,
            hbm_bytes: 1 << 24,
            blocks: 1024,
            threads_per_block: p.threads,
            ..Default::default()
        });
        assert_eq!(choice.point.block_axis, 16);
        assert!(choice.latency_us.is_finite());
        assert_eq!(choice.evaluated, TuningSpace::default().points().len());
    }

    #[test]
    fn infeasible_candidates_are_skipped() {
        let arch = GpuArch::a10();
        let tuner = AutoTuner::new(arch.clone());
        let choice = tuner.tune(|p| KernelProfile {
            flops: 1 << 26,
            hbm_bytes: 1 << 24,
            blocks: 2048,
            // Pipeline depth 3 demands more shared memory than the SM has.
            shared_mem_per_block: if p.pipeline_depth == 3 {
                arch.shared_mem_per_sm * 2
            } else {
                32 * 1024
            },
            ..Default::default()
        });
        assert_ne!(choice.point.pipeline_depth, 3);
    }
}
