//! The auto-tuner (§4.4): an empirical search space over block tile size,
//! threads per block, software-pipeline depth and (for the Multi-Segment
//! strategy) the number of segments, evaluated against the analytical GPU
//! model.
//!
//! Compilation is the serving hot path (the `rf-runtime` plan cache pays the
//! full tuner cost on every miss), so the search is staged instead of brute
//! force:
//!
//! 1. **Canonicalization + dedup** — an optional [`TuneHooks::normalize`] hook
//!    maps every raw point to the point the lowering will actually build
//!    (tile sizes clamped to the shape, the `segments` knob collapsed where
//!    the strategy ignores it). Points that collapse to the same canonical
//!    point are evaluated once instead of once per alias.
//! 2. **Static feasibility** — an optional [`TuneHooks::footprint`] hook
//!    reports the launch resources of a point without lowering it; points
//!    that can never fit the target [`GpuArch`] (shared memory, per-block
//!    thread limit) are rejected by [`GpuArch::launch_feasible`] before a
//!    [`KernelProfile`] is ever built.
//! 3. **Search** — [`SearchMode::Guided`] seeds a stratified sample (plus any
//!    [`TuningCache`] warm-start points) and refines the best seeds by
//!    coordinate descent over one knob at a time; the exhaustive scan of the
//!    surviving candidates is kept behind [`SearchMode::Exhaustive`] /
//!    [`TuningSpace::exhaustive`] as the oracle.
//! 4. **Parallel evaluation** — large candidate batches are evaluated on a
//!    scoped thread pool (`std::thread::scope`); results are memoized per
//!    point and the winner is selected with a deterministic tie-break, so the
//!    parallel and serial paths choose identical configurations.
//!
//! A [`TuningCache`] remembers winning points per `(workload class, arch
//! fingerprint)` pair and warm-starts later searches of the same class, the
//! way the `rf-runtime` plan cache amortizes whole compilations.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use rf_gpusim::{estimate_latency, GpuArch, KernelProfile};

use crate::strategy::Strategy;

/// One point of the tuning search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TuningPoint {
    /// Rows (query rows / tokens) per block tile.
    pub block_rows: usize,
    /// Reduction-axis elements per main-loop iteration.
    pub block_axis: usize,
    /// Threads per block.
    pub threads: u32,
    /// Software-pipeline depth.
    pub pipeline_depth: u32,
    /// Number of axis segments (1 = Single-Segment strategy).
    pub segments: u32,
}

impl TuningPoint {
    /// The execution strategy this point's `segments` knob encodes.
    pub fn strategy(&self) -> Strategy {
        Strategy::from_segments(self.segments)
    }
}

/// The search space. The defaults mirror the paper's empirical space: a few
/// power-of-two tile sizes, warp-multiple thread counts, shallow pipelines and
/// small split factors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuningSpace {
    /// Candidate block-row tile sizes.
    pub block_rows: Vec<usize>,
    /// Candidate block-axis tile sizes.
    pub block_axis: Vec<usize>,
    /// Candidate thread counts.
    pub threads: Vec<u32>,
    /// Candidate pipeline depths.
    pub pipeline_depths: Vec<u32>,
    /// Candidate segment counts.
    pub segments: Vec<u32>,
}

impl Default for TuningSpace {
    fn default() -> Self {
        TuningSpace {
            block_rows: vec![16, 32, 64, 128],
            block_axis: vec![16, 32, 64, 128, 256],
            threads: vec![128, 256],
            pipeline_depths: vec![1, 2, 3],
            segments: vec![1, 2, 4, 8, 16, 32, 64],
        }
    }
}

impl TuningSpace {
    /// Enumerates every point of the space.
    pub fn points(&self) -> Vec<TuningPoint> {
        let mut out = Vec::with_capacity(self.len());
        for &block_rows in &self.block_rows {
            for &block_axis in &self.block_axis {
                for &threads in &self.threads {
                    for &pipeline_depth in &self.pipeline_depths {
                        for &segments in &self.segments {
                            out.push(TuningPoint {
                                block_rows,
                                block_axis,
                                threads,
                                pipeline_depth,
                                segments,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// The full cartesian scan, for exhaustive-oracle comparisons (alias of
    /// [`TuningSpace::points`]; the guided search only ever evaluates a
    /// subset of these).
    pub fn exhaustive(&self) -> Vec<TuningPoint> {
        self.points()
    }

    /// Size of the cartesian product.
    pub fn len(&self) -> usize {
        self.block_rows.len()
            * self.block_axis.len()
            * self.threads.len()
            * self.pipeline_depths.len()
            * self.segments.len()
    }

    /// Whether the space contains no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The coordinate-descent neighborhood of `point`: every single-knob
    /// variation, plus two joint planes — `(block_rows, block_axis)` (the
    /// tile knobs trade off against the same shared-memory budget) and
    /// `(block_axis, segments)` (together they set the per-segment trip
    /// count). A better configuration often requires moving both knobs of a
    /// coupled pair at once, a diagonal step no single-knob sweep can take.
    /// Includes `point` itself.
    fn neighborhood(&self, point: &TuningPoint) -> Vec<TuningPoint> {
        let mut out = Vec::with_capacity(
            self.block_rows.len() * self.block_axis.len()
                + self.block_axis.len() * self.segments.len()
                + self.threads.len()
                + self.pipeline_depths.len(),
        );
        for &block_rows in &self.block_rows {
            for &block_axis in &self.block_axis {
                out.push(TuningPoint {
                    block_rows,
                    block_axis,
                    ..*point
                });
            }
        }
        for &block_axis in &self.block_axis {
            for &segments in &self.segments {
                out.push(TuningPoint {
                    block_axis,
                    segments,
                    ..*point
                });
            }
        }
        // The ±1 cube over all three coupled knobs at once: a 3-knob diagonal
        // ridge (seen on MLA decode shapes) is invisible to both planes but
        // always within one cube step.
        fn window<T: Copy + PartialOrd>(values: &[T], current: T) -> Vec<T> {
            let idx = values
                .iter()
                .position(|v| *v >= current)
                .unwrap_or(values.len().saturating_sub(1));
            values[idx.saturating_sub(1)..(idx + 2).min(values.len())].to_vec()
        }
        for block_rows in window(&self.block_rows, point.block_rows) {
            for block_axis in window(&self.block_axis, point.block_axis) {
                for segments in window(&self.segments, point.segments) {
                    out.push(TuningPoint {
                        block_rows,
                        block_axis,
                        segments,
                        ..*point
                    });
                }
            }
        }
        for &threads in &self.threads {
            out.push(TuningPoint { threads, ..*point });
        }
        for &pipeline_depth in &self.pipeline_depths {
            out.push(TuningPoint {
                pipeline_depth,
                ..*point
            });
        }
        out
    }
}

/// Default number of coordinate-descent starting points for
/// [`SearchMode::Guided`].
pub const DEFAULT_BEAM_WIDTH: usize = 2;

/// Candidate batches at least this large are evaluated on the scoped thread
/// pool; smaller batches (a single coordinate-descent sweep) stay inline,
/// where thread spawn overhead would dominate.
const PARALLEL_BATCH_THRESHOLD: usize = 64;

/// How the tuner walks the (deduplicated, statically feasible) candidate set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Evaluate every candidate. This is the oracle the guided mode is
    /// validated against; it is also what the tuner did historically.
    Exhaustive,
    /// Evaluate a stratified seed sample (plus [`TuningCache`] warm starts)
    /// and refine the best `beam_width` seeds by coordinate descent: sweep
    /// one knob at a time, move on strict improvement, stop when no knob
    /// improves.
    Guided {
        /// Number of seeds refined by coordinate descent.
        beam_width: usize,
    },
}

impl Default for SearchMode {
    fn default() -> Self {
        SearchMode::Guided {
            beam_width: DEFAULT_BEAM_WIDTH,
        }
    }
}

/// Static launch resources of one candidate point, cheap to compute without
/// lowering the point to a tile program (see [`TuneHooks::footprint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointFootprint {
    /// Threads per block the point launches with.
    pub threads_per_block: u32,
    /// Shared memory per block, in bytes, the lowered kernel will request.
    pub shared_mem_per_block: u64,
}

/// Optional workload-specific hooks for the staged search.
///
/// Both hooks must be *exact* with respect to the lowering they describe:
/// `normalize` must map a point to another point producing the identical
/// kernel (it is used to deduplicate), and `footprint` must report exactly
/// the shared memory the lowered program requests (an over-estimate would
/// prune feasible points and break the exhaustive-oracle equivalence).
#[derive(Default, Clone, Copy)]
pub struct TuneHooks<'a> {
    /// Maps a raw point to the canonical point the lowering actually builds
    /// (e.g. tile sizes clamped to the workload shape, `segments` collapsed
    /// to 1 where the Single-Segment strategy ignores it).
    pub normalize: Option<&'a (dyn Fn(&TuningPoint) -> TuningPoint + Sync)>,
    /// Reports the static launch resources of a canonical point.
    pub footprint: Option<&'a (dyn Fn(&TuningPoint) -> PointFootprint + Sync)>,
}

impl std::fmt::Debug for TuneHooks<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TuneHooks")
            .field("normalize", &self.normalize.is_some())
            .field("footprint", &self.footprint.is_some())
            .finish()
    }
}

/// Counters of one [`TuningCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TuningCacheStats {
    /// Warm-start lookups performed.
    pub lookups: u64,
    /// Lookups that returned at least one previously winning point.
    pub seeded: u64,
    /// Winning points recorded.
    pub insertions: u64,
    /// Distinct `(workload class, arch fingerprint)` keys resident.
    pub entries: usize,
}

/// Most-recent winners kept per `(workload class, arch fingerprint)` key.
const MAX_SEEDS_PER_KEY: usize = 4;

/// A cross-compilation memory of winning [`TuningPoint`]s, keyed by workload
/// class (e.g. `"mha"`, `"softmax"`) and architecture fingerprint.
///
/// The guided search injects the cached winners as extra seeds, so compiling
/// a new shape of an already-seen workload class starts its coordinate
/// descent next to a configuration that won before and typically converges in
/// one sweep. The cache is thread-safe and shared via [`Arc`]; `rf-runtime`'s
/// plan cache owns one per engine and reports its counters in the runtime
/// metrics.
#[derive(Debug, Default)]
pub struct TuningCache {
    entries: RwLock<HashMap<(String, u64), Vec<TuningPoint>>>,
    lookups: AtomicU64,
    seeded: AtomicU64,
    insertions: AtomicU64,
}

impl TuningCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Previously winning points for `class` on the architecture with the
    /// given fingerprint, most recent first (empty when the class was never
    /// tuned on that architecture).
    pub fn seeds(&self, class: &str, arch_fingerprint: u64) -> Vec<TuningPoint> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let seeds = self
            .entries
            .read()
            .expect("tuning cache lock poisoned")
            .get(&(class.to_string(), arch_fingerprint))
            .cloned()
            .unwrap_or_default();
        if !seeds.is_empty() {
            self.seeded.fetch_add(1, Ordering::Relaxed);
        }
        seeds
    }

    /// Records `point` as a winner for `class` on the architecture with the
    /// given fingerprint (most recent first, bounded per key).
    pub fn record(&self, class: &str, arch_fingerprint: u64, point: TuningPoint) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.write().expect("tuning cache lock poisoned");
        let seeds = entries
            .entry((class.to_string(), arch_fingerprint))
            .or_default();
        seeds.retain(|p| *p != point);
        seeds.insert(0, point);
        seeds.truncate(MAX_SEEDS_PER_KEY);
    }

    /// Current counter values.
    pub fn stats(&self) -> TuningCacheStats {
        TuningCacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            seeded: self.seeded.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            entries: self
                .entries
                .read()
                .expect("tuning cache lock poisoned")
                .len(),
        }
    }
}

/// The winning configuration and its estimated latency.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningChoice {
    /// The chosen point.
    pub point: TuningPoint,
    /// Its kernel profile.
    pub profile: KernelProfile,
    /// Estimated latency in microseconds.
    pub latency_us: f64,
    /// Number of distinct candidates run through the cost model.
    pub evaluated: usize,
    /// Size of the raw cartesian space before dedup and pruning.
    pub space_size: usize,
    /// The search mode that produced this choice.
    pub mode: SearchMode,
}

#[derive(Clone)]
struct Evaluation {
    profile: KernelProfile,
    latency_us: f64,
}

/// Evaluates a search space against one architecture using the staged search
/// described in the [module docs](self).
#[derive(Debug, Clone)]
pub struct AutoTuner {
    arch: GpuArch,
    space: TuningSpace,
    mode: SearchMode,
    parallelism: usize,
    oracle_check: bool,
    cache: Option<(Arc<TuningCache>, String)>,
}

impl AutoTuner {
    /// Creates a tuner for one architecture with the default search space and
    /// the default (guided) search mode.
    pub fn new(arch: GpuArch) -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        AutoTuner {
            arch,
            space: TuningSpace::default(),
            mode: SearchMode::default(),
            parallelism,
            oracle_check: false,
            cache: None,
        }
    }

    /// Replaces the search space.
    pub fn with_space(mut self, space: TuningSpace) -> Self {
        self.space = space;
        self
    }

    /// Replaces the search mode.
    pub fn with_mode(mut self, mode: SearchMode) -> Self {
        self.mode = mode;
        self
    }

    /// Caps the number of evaluation threads (1 forces serial evaluation).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// In debug builds, re-runs the exhaustive oracle after a guided search
    /// and asserts the guided choice is within 5% of the oracle's latency.
    /// Intended for tests on tiny configurations; it makes `tune` pay the
    /// full exhaustive cost.
    pub fn with_oracle_check(mut self, check: bool) -> Self {
        self.oracle_check = check;
        self
    }

    /// Warm-starts the search from `cache`'s winners for `class` and records
    /// the new winner back into it.
    pub fn with_cache(mut self, cache: Arc<TuningCache>, class: impl Into<String>) -> Self {
        self.cache = Some((cache, class.into()));
        self
    }

    /// The architecture being tuned for.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// Evaluates `build` over the space and returns the lowest-latency choice
    /// (no workload-specific hooks; see [`AutoTuner::tune_with_hooks`]).
    ///
    /// # Panics
    ///
    /// Panics if the search space is empty or every candidate is infeasible
    /// (infinite latency) — callers always include at least one incremental
    /// Single-Segment point, which is feasible on every supported GPU.
    pub fn tune<F>(&self, build: F) -> TuningChoice
    where
        F: Fn(&TuningPoint) -> KernelProfile + Sync,
    {
        self.tune_with_hooks(&build, TuneHooks::default())
    }

    /// Like [`AutoTuner::tune`], with workload-specific canonicalization and
    /// static-footprint hooks enabling the dedup and feasibility stages.
    pub fn tune_with_hooks<F>(&self, build: &F, hooks: TuneHooks<'_>) -> TuningChoice
    where
        F: Fn(&TuningPoint) -> KernelProfile + Sync,
    {
        let raw = self.space.points();
        assert!(!raw.is_empty(), "tuning space must not be empty");
        let space_size = raw.len();

        // Stages 1 + 2: canonicalize, dedup, reject statically infeasible
        // points before anything is lowered.
        let mut seen = HashSet::with_capacity(raw.len());
        let mut candidates = Vec::with_capacity(raw.len());
        for point in &raw {
            let canonical = hooks.normalize.map_or(*point, |n| n(point));
            if !seen.insert(canonical) {
                continue;
            }
            let footprint = hooks.footprint.map_or(
                PointFootprint {
                    threads_per_block: canonical.threads,
                    shared_mem_per_block: 0,
                },
                |f| f(&canonical),
            );
            if !self
                .arch
                .launch_feasible(footprint.threads_per_block, footprint.shared_mem_per_block)
            {
                continue;
            }
            candidates.push(canonical);
        }
        assert!(
            !candidates.is_empty(),
            "every point of the tuning space is statically infeasible on {}",
            self.arch.name
        );
        // Candidate order defines the deterministic tie-break, so parallel,
        // serial, guided and exhaustive runs agree on equal-latency winners.
        let index: HashMap<TuningPoint, usize> = candidates
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, i))
            .collect();

        let memo: Mutex<HashMap<TuningPoint, Evaluation>> = Mutex::new(HashMap::new());
        match self.mode {
            SearchMode::Exhaustive => self.evaluate(build, &memo, &candidates),
            SearchMode::Guided { beam_width } => {
                self.guided_search(build, &memo, &candidates, &index, &hooks, beam_width);
                // Safety net: if the guided walk only ever saw model-infeasible
                // profiles (possible without a footprint hook), fall back to
                // the oracle rather than panic on an infinite winner.
                let all_infinite = {
                    let map = memo.lock().expect("tuner memo poisoned");
                    map.values().all(|e| !e.latency_us.is_finite())
                };
                if all_infinite {
                    self.evaluate(build, &memo, &candidates);
                }
            }
        }

        let (point, evaluation, evaluated) = {
            let map = memo.lock().expect("tuner memo poisoned");
            let (point, evaluation) = map
                .iter()
                .min_by(|a, b| {
                    a.1.latency_us
                        .total_cmp(&b.1.latency_us)
                        .then_with(|| index[a.0].cmp(&index[b.0]))
                })
                .expect("at least one tuning point evaluated");
            (*point, evaluation.clone(), map.len())
        };
        let choice = TuningChoice {
            point,
            profile: evaluation.profile,
            latency_us: evaluation.latency_us,
            evaluated,
            space_size,
            mode: self.mode,
        };
        assert!(
            choice.latency_us.is_finite(),
            "every candidate configuration was infeasible on {}",
            self.arch.name
        );
        // Guard the hand-written hooks against drifting from the lowering
        // they describe: the footprint must report exactly the resources the
        // built kernel requests (an over-estimate would silently prune
        // feasible points from both search modes, an under-estimate would
        // defeat the prefilter).
        if let Some(footprint) = hooks.footprint {
            let fp = footprint(&choice.point);
            debug_assert!(
                fp.threads_per_block == choice.profile.threads_per_block
                    && fp.shared_mem_per_block == choice.profile.shared_mem_per_block,
                "footprint hook out of sync with the lowering for {:?}: \
                 hook reports {} threads / {} B shared, built kernel uses {} / {}",
                choice.point,
                fp.threads_per_block,
                fp.shared_mem_per_block,
                choice.profile.threads_per_block,
                choice.profile.shared_mem_per_block
            );
        }
        if let Some((cache, class)) = &self.cache {
            cache.record(class, crate::compile::arch_fingerprint(&self.arch), point);
        }
        if cfg!(debug_assertions)
            && self.oracle_check
            && matches!(self.mode, SearchMode::Guided { .. })
        {
            self.evaluate(build, &memo, &candidates);
            let map = memo.lock().expect("tuner memo poisoned");
            let oracle = map
                .values()
                .map(|e| e.latency_us)
                .fold(f64::INFINITY, f64::min);
            debug_assert!(
                choice.latency_us <= oracle * 1.05,
                "guided search chose {:.3} us but the exhaustive oracle found {:.3} us \
                 (>5% slower) on {}",
                choice.latency_us,
                oracle,
                self.arch.name
            );
        }
        choice
    }

    /// Seeds + coordinate descent (stage 3).
    fn guided_search<F>(
        &self,
        build: &F,
        memo: &Mutex<HashMap<TuningPoint, Evaluation>>,
        candidates: &[TuningPoint],
        index: &HashMap<TuningPoint, usize>,
        hooks: &TuneHooks<'_>,
        beam_width: usize,
    ) where
        F: Fn(&TuningPoint) -> KernelProfile + Sync,
    {
        let beam = beam_width.clamp(1, candidates.len());
        let mut seeds: Vec<TuningPoint> = Vec::new();
        if let Some((cache, class)) = &self.cache {
            for warm in cache.seeds(class, crate::compile::arch_fingerprint(&self.arch)) {
                let canonical = hooks.normalize.map_or(warm, |n| n(&warm));
                if index.contains_key(&canonical) {
                    seeds.push(canonical);
                }
            }
        }
        // A coarse half-resolution lattice over the three coupled knobs
        // (`block_rows`, `block_axis`, `segments`): they all trade off
        // against the same shared-memory budget and grid size, so descent
        // seeded on the wrong side of that 3-D ridge stalls at a local
        // optimum no single step escapes. Sampling every other value of each
        // coupled axis (threads and pipeline depth held at their middle
        // values — they are independent and cheap for descent to fix) puts
        // one seed within one descent step of every region of the ridge.
        // Every other value of an axis, always including the extremes (the
        // boundary values are frequent winners — e.g. the largest row tile).
        fn halved<T: Copy>(values: &[T]) -> Vec<T> {
            let mut out: Vec<T> = values.iter().copied().step_by(2).collect();
            if values.len().is_multiple_of(2) {
                if let Some(last) = values.last() {
                    out.push(*last);
                }
            }
            out
        }
        let mid = |n: usize| n / 2;
        let threads = self.space.threads[mid(self.space.threads.len())];
        let pipeline_depth = self.space.pipeline_depths[mid(self.space.pipeline_depths.len())];
        for block_rows in halved(&self.space.block_rows) {
            for block_axis in halved(&self.space.block_axis) {
                for segments in halved(&self.space.segments) {
                    let lattice = TuningPoint {
                        block_rows,
                        block_axis,
                        threads,
                        pipeline_depth,
                        segments,
                    };
                    let canonical = hooks.normalize.map_or(lattice, |n| n(&lattice));
                    if index.contains_key(&canonical) {
                        seeds.push(canonical);
                    }
                }
            }
        }
        // Plus a stratified sample across the whole candidate list.
        let stride = (candidates.len() / beam).max(1);
        for i in (0..candidates.len()).step_by(stride) {
            seeds.push(candidates[i]);
        }
        let mut seed_set = HashSet::new();
        seeds.retain(|p| seed_set.insert(*p));
        self.evaluate(build, memo, &seeds);

        // Keep the best `beam` seeds as descent starting points.
        {
            let map = memo.lock().expect("tuner memo poisoned");
            seeds.sort_by(|a, b| {
                map[a]
                    .latency_us
                    .total_cmp(&map[b].latency_us)
                    .then_with(|| index[a].cmp(&index[b]))
            });
        }
        seeds.truncate(beam);

        for start in seeds {
            let mut current = start;
            loop {
                let neighborhood: Vec<TuningPoint> = self
                    .space
                    .neighborhood(&current)
                    .into_iter()
                    .map(|p| hooks.normalize.map_or(p, |n| n(&p)))
                    .filter(|p| index.contains_key(p))
                    .collect();
                self.evaluate(build, memo, &neighborhood);
                let map = memo.lock().expect("tuner memo poisoned");
                let best = neighborhood
                    .iter()
                    .min_by(|a, b| {
                        map[*a]
                            .latency_us
                            .total_cmp(&map[*b].latency_us)
                            .then_with(|| index[*a].cmp(&index[*b]))
                    })
                    .copied()
                    .unwrap_or(current);
                // Move only on strict improvement so descent terminates.
                if map[&best].latency_us < map[&current].latency_us {
                    drop(map);
                    current = best;
                } else {
                    break;
                }
            }
        }
    }

    /// Evaluates every not-yet-memoized point of `points`, inline for small
    /// batches and on a scoped thread pool for large ones (stage 4). The memo
    /// guarantees each distinct point is costed exactly once per `tune` call.
    fn evaluate<F>(
        &self,
        build: &F,
        memo: &Mutex<HashMap<TuningPoint, Evaluation>>,
        points: &[TuningPoint],
    ) where
        F: Fn(&TuningPoint) -> KernelProfile + Sync,
    {
        let todo: Vec<TuningPoint> = {
            let map = memo.lock().expect("tuner memo poisoned");
            let mut fresh = HashSet::new();
            points
                .iter()
                .filter(|p| !map.contains_key(*p) && fresh.insert(**p))
                .copied()
                .collect()
        };
        if todo.is_empty() {
            return;
        }
        let evaluate_one = |point: &TuningPoint| {
            let profile = build(point);
            let latency_us = estimate_latency(&self.arch, &profile).total_us;
            (
                *point,
                Evaluation {
                    profile,
                    latency_us,
                },
            )
        };
        if self.parallelism <= 1 || todo.len() < PARALLEL_BATCH_THRESHOLD {
            let evaluations: Vec<_> = todo.iter().map(evaluate_one).collect();
            memo.lock()
                .expect("tuner memo poisoned")
                .extend(evaluations);
        } else {
            let workers = self.parallelism.min(todo.len());
            let chunk_len = todo.len().div_ceil(workers);
            let evaluate_one = &evaluate_one;
            std::thread::scope(|scope| {
                let handles: Vec<_> = todo
                    .chunks(chunk_len)
                    .map(|chunk| {
                        scope.spawn(move || chunk.iter().map(evaluate_one).collect::<Vec<_>>())
                    })
                    .collect();
                let mut map = memo.lock().expect("tuner memo poisoned");
                for handle in handles {
                    map.extend(handle.join().expect("tuning evaluation thread panicked"));
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_enumerates_cartesian_product() {
        let space = TuningSpace::default();
        assert_eq!(space.points().len(), 4 * 5 * 2 * 3 * 7);
        assert_eq!(space.len(), space.points().len());
        assert_eq!(space.exhaustive(), space.points());
        assert!(!space.is_empty());
    }

    fn artificial_build(p: &TuningPoint) -> KernelProfile {
        KernelProfile {
            // Smaller block_axis is artificially made cheaper here.
            flops: (p.block_axis as u64) << 22,
            hbm_bytes: 1 << 24,
            blocks: 1024,
            threads_per_block: p.threads,
            ..Default::default()
        }
    }

    #[test]
    fn exhaustive_tuner_picks_the_fastest_candidate() {
        let tuner = AutoTuner::new(GpuArch::a10()).with_mode(SearchMode::Exhaustive);
        let choice = tuner.tune(artificial_build);
        assert_eq!(choice.point.block_axis, 16);
        assert!(choice.latency_us.is_finite());
        assert_eq!(choice.evaluated, TuningSpace::default().points().len());
        assert_eq!(choice.space_size, TuningSpace::default().len());
    }

    #[test]
    fn guided_matches_exhaustive_with_far_fewer_evaluations() {
        let arch = GpuArch::a10();
        let oracle = AutoTuner::new(arch.clone())
            .with_mode(SearchMode::Exhaustive)
            .tune(artificial_build);
        let guided = AutoTuner::new(arch)
            .with_oracle_check(true)
            .tune(artificial_build);
        assert_eq!(guided.point, oracle.point);
        assert_eq!(guided.latency_us, oracle.latency_us);
        assert!(
            guided.evaluated * 5 <= oracle.evaluated,
            "guided evaluated {} of {}",
            guided.evaluated,
            oracle.evaluated
        );
    }

    #[test]
    fn parallel_and_serial_exhaustive_agree() {
        let arch = GpuArch::a10();
        let serial = AutoTuner::new(arch.clone())
            .with_mode(SearchMode::Exhaustive)
            .with_parallelism(1)
            .tune(artificial_build);
        let parallel = AutoTuner::new(arch)
            .with_mode(SearchMode::Exhaustive)
            .with_parallelism(8)
            .tune(artificial_build);
        assert_eq!(serial.point, parallel.point);
        assert_eq!(serial.latency_us, parallel.latency_us);
        assert_eq!(serial.evaluated, parallel.evaluated);
    }

    #[test]
    fn normalize_hook_deduplicates_equivalent_points() {
        // Collapse the segments knob entirely (a strategy that ignores it):
        // the tuner must stop paying the 7x multiplier for it.
        let tuner = AutoTuner::new(GpuArch::a10()).with_mode(SearchMode::Exhaustive);
        let normalize = |p: &TuningPoint| TuningPoint { segments: 1, ..*p };
        let hooks = TuneHooks {
            normalize: Some(&normalize),
            footprint: None,
        };
        let choice = tuner.tune_with_hooks(&artificial_build, hooks);
        let space = TuningSpace::default();
        assert_eq!(choice.evaluated, space.len() / space.segments.len());
        assert_eq!(choice.point.segments, 1);
    }

    #[test]
    fn footprint_hook_prunes_statically_infeasible_points() {
        let arch = GpuArch::a10();
        let shared = arch.shared_mem_per_sm;
        let tuner = AutoTuner::new(arch).with_mode(SearchMode::Exhaustive);
        // Pipeline depth 3 demands more shared memory than the SM has; the
        // prefilter must reject it without ever calling `build`.
        let footprint = move |p: &TuningPoint| PointFootprint {
            threads_per_block: p.threads,
            shared_mem_per_block: if p.pipeline_depth == 3 {
                shared * 2
            } else {
                32 * 1024
            },
        };
        let hooks = TuneHooks {
            normalize: None,
            footprint: Some(&footprint),
        };
        let choice = tuner.tune_with_hooks(
            &|p: &TuningPoint| {
                assert_ne!(p.pipeline_depth, 3, "pruned point reached the builder");
                KernelProfile {
                    shared_mem_per_block: 32 * 1024,
                    ..artificial_build(p)
                }
            },
            hooks,
        );
        assert_ne!(choice.point.pipeline_depth, 3);
        let space = TuningSpace::default();
        assert_eq!(choice.evaluated, space.len() * 2 / 3);
    }

    #[test]
    fn infeasible_candidates_are_skipped() {
        let arch = GpuArch::a10();
        let tuner = AutoTuner::new(arch.clone()).with_mode(SearchMode::Exhaustive);
        let choice = tuner.tune(|p| KernelProfile {
            flops: 1 << 26,
            hbm_bytes: 1 << 24,
            blocks: 2048,
            // Pipeline depth 3 demands more shared memory than the SM has.
            shared_mem_per_block: if p.pipeline_depth == 3 {
                arch.shared_mem_per_sm * 2
            } else {
                32 * 1024
            },
            ..Default::default()
        });
        assert_ne!(choice.point.pipeline_depth, 3);
    }

    #[test]
    fn tuning_cache_warm_starts_and_records() {
        let cache = Arc::new(TuningCache::new());
        let arch = GpuArch::a10();
        let cold = AutoTuner::new(arch.clone())
            .with_cache(Arc::clone(&cache), "artificial")
            .tune(artificial_build);
        let stats = cache.stats();
        assert_eq!(stats.lookups, 1);
        assert_eq!(stats.seeded, 0);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        let warm = AutoTuner::new(arch)
            .with_cache(Arc::clone(&cache), "artificial")
            .tune(artificial_build);
        assert_eq!(warm.point, cold.point);
        assert_eq!(warm.latency_us, cold.latency_us);
        let stats = cache.stats();
        assert_eq!(stats.seeded, 1);
        assert_eq!(stats.insertions, 2);
    }

    #[test]
    fn tuning_cache_bounds_seeds_per_key() {
        let cache = TuningCache::new();
        for i in 0..10u32 {
            cache.record(
                "softmax",
                7,
                TuningPoint {
                    block_rows: 16,
                    block_axis: 16,
                    threads: 128,
                    pipeline_depth: 1,
                    segments: i + 1,
                },
            );
        }
        let seeds = cache.seeds("softmax", 7);
        assert_eq!(seeds.len(), MAX_SEEDS_PER_KEY);
        assert_eq!(seeds[0].segments, 10, "most recent winner first");
        assert!(cache.seeds("softmax", 8).is_empty(), "fingerprint keyed");
        assert!(cache.seeds("mha", 7).is_empty(), "class keyed");
    }

    #[test]
    fn point_strategy_follows_segments() {
        let p = TuningPoint {
            block_rows: 16,
            block_axis: 16,
            threads: 128,
            pipeline_depth: 1,
            segments: 1,
        };
        assert_eq!(p.strategy(), Strategy::SingleSegment);
        assert_eq!(
            TuningPoint { segments: 8, ..p }.strategy(),
            Strategy::MultiSegment { segments: 8 }
        );
    }
}
