//! Workload-specific lowering to tile programs.
//!
//! [`attention_program`] reproduces the tile-level structure of Figures 12b
//! (FlashAttention, Single-Segment) and 13b (FlashDecoding, Multi-Segment):
//! a per-block pipeline over KV tiles with `copy`/`gemm`/`reduce`/`parallel`
//! ops and, for the Multi-Segment strategy, a separate combine kernel.
//! [`cascade_program`] lowers generic row-parallel cascades (softmax, MoE
//! routing, Quant+GEMM rows, variance, inertia) through the tensorization pass
//! of `rf-tile`.

use rf_tile::{
    tensorize_cascade, MemoryScope, StageLoop, TensorizeConfig, TileBuffer, TileOp, TileProgram,
};

use crate::strategy::{Mode, Strategy};

/// The shape of one attention problem as seen by the code generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttentionShape {
    /// Number of independent (batch × head) attention problems.
    pub heads: usize,
    /// Query sequence length per head.
    pub q_len: usize,
    /// Key/value sequence length per head.
    pub kv_len: usize,
    /// Head dimension of the values / output.
    pub head_dim: usize,
    /// Query/key dimension (differs from `head_dim` for MLA's RoPE extension).
    pub qk_dim: usize,
}

impl AttentionShape {
    /// Shape of an MHA configuration.
    pub fn from_mha(c: &rf_workloads::MhaConfig) -> Self {
        AttentionShape {
            heads: c.bs * c.hn,
            q_len: c.q,
            kv_len: c.kv,
            head_dim: c.hd,
            qk_dim: c.hd,
        }
    }

    /// Shape of an MLA decode configuration.
    ///
    /// In MLA the latent KV cache is shared by all heads of a batch entry, so
    /// the lowering treats the `hn` heads of one batch as the query rows of a
    /// single attention problem (exactly how FlashMLA tiles the computation):
    /// the KV cache is then loaded once per batch entry rather than once per
    /// head.
    pub fn from_mla(c: &rf_workloads::MlaConfig) -> Self {
        AttentionShape {
            heads: c.bs,
            q_len: c.hn,
            kv_len: c.kv,
            head_dim: c.hd,
            qk_dim: c.qk_dim(),
        }
    }
}

/// Tuning parameters of the attention lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttentionTiling {
    /// Query rows per block tile.
    pub block_q: usize,
    /// KV rows per main-loop iteration.
    pub block_kv: usize,
    /// Threads per block.
    pub threads: u32,
    /// Software pipeline depth.
    pub pipeline_depth: u32,
}

impl Default for AttentionTiling {
    fn default() -> Self {
        AttentionTiling {
            block_q: 128,
            block_kv: 128,
            threads: 256,
            pipeline_depth: 2,
        }
    }
}

/// Builds the fused attention tile program for the given strategy.
///
/// Single-Segment (`Strategy::SingleSegment`) yields the Figure 12b kernel;
/// Multi-Segment splits the KV axis across `segments` blocks per (head,
/// q-block) pair and appends the Figure 13b combine kernel.
pub fn attention_program(
    shape: &AttentionShape,
    tiling: &AttentionTiling,
    strategy: Strategy,
) -> TileProgram {
    let block_q = tiling.block_q.min(shape.q_len).max(1);
    let block_kv = tiling.block_kv.min(shape.kv_len).max(1);
    let q_blocks = shape.q_len.div_ceil(block_q);
    let segments = strategy.segments() as usize;
    let kv_per_segment = shape.kv_len.div_ceil(segments);
    let iterations = kv_per_segment.div_ceil(block_kv) as u64;
    let grid = (shape.heads * q_blocks * segments) as u64;

    let mut program = TileProgram::new(
        match strategy {
            Strategy::SingleSegment => "flash_attention",
            Strategy::MultiSegment { .. } => "flash_decoding_partial",
        },
        grid,
        tiling.threads,
    );
    program.pipeline_depth = tiling.pipeline_depth;
    program.buffers = vec![
        TileBuffer::new(
            "Q",
            vec![shape.heads * shape.q_len, shape.qk_dim],
            MemoryScope::Global,
            2,
        ),
        TileBuffer::new(
            "K",
            vec![shape.heads * shape.kv_len, shape.qk_dim],
            MemoryScope::Global,
            2,
        ),
        TileBuffer::new(
            "V",
            vec![shape.heads * shape.kv_len, shape.head_dim],
            MemoryScope::Global,
            2,
        ),
        TileBuffer::new(
            "o",
            vec![shape.heads * shape.q_len, shape.head_dim],
            MemoryScope::Global,
            2,
        ),
        TileBuffer::new(
            "Q_shared",
            vec![block_q, shape.qk_dim],
            MemoryScope::Shared,
            2,
        ),
        TileBuffer::new(
            "K_shared",
            vec![block_kv, shape.qk_dim],
            MemoryScope::Shared,
            2,
        ),
        TileBuffer::new(
            "V_shared",
            vec![block_kv, shape.head_dim],
            MemoryScope::Shared,
            2,
        ),
        TileBuffer::new("P_frag", vec![block_q, block_kv], MemoryScope::Fragment, 4),
        TileBuffer::new(
            "o_frag",
            vec![block_q, shape.head_dim],
            MemoryScope::Fragment,
            4,
        ),
        TileBuffer::new("pmax", vec![block_q], MemoryScope::Fragment, 4),
        TileBuffer::new("pmax_prev", vec![block_q], MemoryScope::Fragment, 4),
        TileBuffer::new("psum", vec![block_q], MemoryScope::Fragment, 4),
        TileBuffer::new("psum_prev", vec![block_q], MemoryScope::Fragment, 4),
    ];
    program.prologue = vec![
        TileOp::Fill {
            tile: "o_frag".into(),
            value: 0.0,
            elements: (block_q * shape.head_dim) as u64,
        },
        TileOp::Copy {
            src: "Q".into(),
            dst: "Q_shared".into(),
            elements: (block_q * shape.qk_dim) as u64,
        },
    ];
    program.main_loop = StageLoop {
        iterations,
        ops: vec![
            TileOp::Copy {
                src: "K".into(),
                dst: "K_shared".into(),
                elements: (block_kv * shape.qk_dim) as u64,
            },
            TileOp::Copy {
                src: "V".into(),
                dst: "V_shared".into(),
                elements: (block_kv * shape.head_dim) as u64,
            },
            // reduction 1: gemm(Q, K)
            TileOp::Gemm {
                a: "Q_shared".into(),
                b: "K_shared".into(),
                c: "P_frag".into(),
                m: block_q as u64,
                n: block_kv as u64,
                k: shape.qk_dim as u64,
            },
            // reduction 2: max(P) — step 1 store previous, step 3 reduce.
            TileOp::Copy {
                src: "pmax".into(),
                dst: "pmax_prev".into(),
                elements: block_q as u64,
            },
            TileOp::Reduce {
                src: "P_frag".into(),
                dst: "pmax".into(),
                axis_len: block_kv as u64,
                rows: block_q as u64,
                op: rf_algebra::BinaryOp::Max,
            },
            // reduction 3: sum(exp(P - pmax)) — steps 1, 2, 3.
            TileOp::Copy {
                src: "psum".into(),
                dst: "psum_prev".into(),
                elements: block_q as u64,
            },
            TileOp::Parallel {
                expr: "psum[i] *= exp(pmax_prev[i] - pmax[i])".into(),
                elements: block_q as u64,
                flops_per_element: 3,
            },
            TileOp::Parallel {
                expr: "pexp[i, j] = exp(P_frag[i, j] - pmax[i])".into(),
                elements: (block_q * block_kv) as u64,
                flops_per_element: 2,
            },
            TileOp::Reduce {
                src: "P_frag".into(),
                dst: "psum".into(),
                axis_len: block_kv as u64,
                rows: block_q as u64,
                op: rf_algebra::BinaryOp::Add,
            },
            // reduction 4: gemm(exp(P - pmax) / psum, V) — steps 2 and 3.
            TileOp::Parallel {
                expr: "o_frag[i, j] *= exp(pmax_prev[i] - pmax[i]) * (psum_prev[i] / psum[i])"
                    .into(),
                elements: (block_q * shape.head_dim) as u64,
                flops_per_element: 4,
            },
            TileOp::Gemm {
                a: "P_frag".into(),
                b: "V_shared".into(),
                c: "o_frag".into(),
                m: block_q as u64,
                n: shape.head_dim as u64,
                k: block_kv as u64,
            },
        ],
    };
    program.epilogue = vec![TileOp::Copy {
        src: "o_frag".into(),
        dst: "o".into(),
        elements: (block_q * shape.head_dim) as u64,
    }];

    if strategy.needs_combine_kernel() {
        program.epilogue = vec![
            TileOp::Copy {
                src: "pmax".into(),
                dst: "pmax_part".into(),
                elements: block_q as u64,
            },
            TileOp::Copy {
                src: "psum".into(),
                dst: "psum_part".into(),
                elements: block_q as u64,
            },
            TileOp::Copy {
                src: "o_frag".into(),
                dst: "o_part".into(),
                elements: (block_q * shape.head_dim) as u64,
            },
        ];
        let mut combine = TileProgram::new(
            "flash_decoding_combine",
            (shape.heads * q_blocks) as u64,
            tiling.threads,
        );
        combine.buffers = vec![
            TileBuffer::new(
                "pmax_part",
                vec![shape.heads * shape.q_len, segments],
                MemoryScope::Global,
                4,
            ),
            TileBuffer::new(
                "psum_part",
                vec![shape.heads * shape.q_len, segments],
                MemoryScope::Global,
                4,
            ),
            TileBuffer::new(
                "o_part",
                vec![shape.heads * shape.q_len, shape.head_dim * segments],
                MemoryScope::Global,
                4,
            ),
            TileBuffer::new(
                "o",
                vec![shape.heads * shape.q_len, shape.head_dim],
                MemoryScope::Global,
                2,
            ),
            TileBuffer::new(
                "part_frag",
                vec![block_q, shape.head_dim * segments],
                MemoryScope::Fragment,
                4,
            ),
            TileBuffer::new(
                "o_final",
                vec![block_q, shape.head_dim],
                MemoryScope::Fragment,
                4,
            ),
        ];
        combine.main_loop = StageLoop {
            iterations: 1,
            ops: vec![
                TileOp::Copy {
                    src: "pmax_part".into(),
                    dst: "part_frag".into(),
                    elements: (block_q * segments) as u64,
                },
                TileOp::Copy {
                    src: "psum_part".into(),
                    dst: "part_frag".into(),
                    elements: (block_q * segments) as u64,
                },
                TileOp::Copy {
                    src: "o_part".into(),
                    dst: "part_frag".into(),
                    elements: (block_q * shape.head_dim * segments) as u64,
                },
                TileOp::Reduce {
                    src: "part_frag".into(),
                    dst: "o_final".into(),
                    axis_len: segments as u64,
                    rows: block_q as u64,
                    op: rf_algebra::BinaryOp::Max,
                },
                TileOp::Parallel {
                    expr: "o_final[i, j, k] *= exp(pmax_frag[i, k] - pmax[i]) * (psum_frag[i, k] / psum[i])".into(),
                    elements: (block_q * shape.head_dim * segments) as u64,
                    flops_per_element: 4,
                },
                TileOp::Reduce {
                    src: "part_frag".into(),
                    dst: "o_final".into(),
                    axis_len: segments as u64,
                    rows: (block_q * shape.head_dim) as u64,
                    op: rf_algebra::BinaryOp::Add,
                },
                TileOp::Copy {
                    src: "o_final".into(),
                    dst: "o".into(),
                    elements: (block_q * shape.head_dim) as u64,
                },
            ],
        };
        program.combine_kernel = Some(Box::new(combine));
    }

    program
}

/// Lowers a generic row-parallel cascade (softmax / MoE routing / Quant+GEMM
/// rows / variance / inertia) to a tile program via the tensorization pass,
/// honouring the computation mode and strategy.
pub fn cascade_program(
    name: &str,
    num_reductions: usize,
    rows: usize,
    axis_len: usize,
    mode: Mode,
    strategy: Strategy,
    cfg: &TensorizeConfig,
) -> TileProgram {
    let segments = strategy.segments() as usize;
    let axis_per_segment = axis_len.div_ceil(segments).max(1);
    let effective_rows = rows * segments;
    let tensorize_cfg = TensorizeConfig {
        incremental: mode == Mode::Incremental,
        ..*cfg
    };
    let mut program = tensorize_cascade(
        name,
        num_reductions,
        axis_per_segment,
        effective_rows,
        &tensorize_cfg,
    );
    if strategy.needs_combine_kernel() {
        // The combine kernel iterates over the original rows, so its tile
        // height clamps to them (exactly like the main kernel's tiles clamp
        // to the effective rows).
        let combine_rows = cfg.block_rows.min(rows).max(1);
        let mut combine = TileProgram::new(
            format!("{name}_combine"),
            rows.div_ceil(combine_rows).max(1) as u64,
            cfg.threads_per_block,
        );
        combine.precision = program.precision;
        combine.buffers = vec![
            TileBuffer::new(
                "partials",
                vec![rows, segments * num_reductions],
                MemoryScope::Global,
                4,
            ),
            TileBuffer::new("out", vec![rows, num_reductions], MemoryScope::Global, 4),
            TileBuffer::new(
                "partial_frag",
                vec![combine_rows, segments * num_reductions],
                MemoryScope::Fragment,
                4,
            ),
        ];
        combine.main_loop = StageLoop {
            iterations: 1,
            ops: vec![
                TileOp::Copy {
                    src: "partials".into(),
                    dst: "partial_frag".into(),
                    elements: (combine_rows * segments * num_reductions) as u64,
                },
                TileOp::Reduce {
                    src: "partial_frag".into(),
                    dst: "out".into(),
                    axis_len: segments as u64,
                    rows: (combine_rows * num_reductions) as u64,
                    op: rf_algebra::BinaryOp::Add,
                },
                TileOp::Copy {
                    src: "partial_frag".into(),
                    dst: "out".into(),
                    elements: (combine_rows * num_reductions) as u64,
                },
            ],
        };
        program.combine_kernel = Some(Box::new(combine));
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_workloads::{mha_configs, mla_configs};

    #[test]
    fn single_segment_attention_is_one_kernel() {
        let shape = AttentionShape::from_mha(&mha_configs()[1]);
        let program =
            attention_program(&shape, &AttentionTiling::default(), Strategy::SingleSegment);
        let cost = program.cost();
        assert_eq!(cost.kernel_launches, 1);
        assert!(cost.flops > 0 && cost.global_bytes > 0);
        let text = program.to_string();
        assert!(text.contains("gemm(Q_shared, K_shared, P_frag)"));
        assert!(text.contains("psum[i] *= exp(pmax_prev[i] - pmax[i])"));
    }

    #[test]
    fn multi_segment_attention_adds_a_combine_kernel() {
        let shape = AttentionShape::from_mla(&mla_configs()[0]);
        let single =
            attention_program(&shape, &AttentionTiling::default(), Strategy::SingleSegment);
        let multi = attention_program(
            &shape,
            &AttentionTiling::default(),
            Strategy::MultiSegment { segments: 4 },
        );
        assert_eq!(multi.cost().kernel_launches, 2);
        assert!(
            multi.grid_blocks > single.grid_blocks,
            "splitting increases parallelism"
        );
    }

    #[test]
    fn fused_attention_avoids_score_matrix_traffic() {
        let config = &mha_configs()[1];
        let shape = AttentionShape::from_mha(config);
        let program =
            attention_program(&shape, &AttentionTiling::default(), Strategy::SingleSegment);
        let score_bytes = config.score_bytes(rf_workloads::Precision::Fp16);
        // Unfused execution spills the score matrix several times; the fused
        // kernel's total global traffic is below even one score-matrix pass
        // plus the unavoidable Q/K/V/O traffic.
        assert!(
            program.cost().global_bytes
                < config.min_bytes(rf_workloads::Precision::Fp16) * 6 + score_bytes
        );
    }

    #[test]
    fn cascade_program_modes_and_strategies() {
        let cfg = rf_tile::TensorizeConfig::default();
        let single = cascade_program(
            "softmax",
            2,
            2048,
            8192,
            Mode::Incremental,
            Strategy::SingleSegment,
            &cfg,
        );
        assert_eq!(single.cost().kernel_launches, 1);
        let multi = cascade_program(
            "softmax",
            2,
            2048,
            8192,
            Mode::Incremental,
            Strategy::MultiSegment { segments: 4 },
            &cfg,
        );
        assert_eq!(multi.cost().kernel_launches, 2);
        assert!(multi.grid_blocks > single.grid_blocks);
        let non_inc = cascade_program(
            "softmax",
            2,
            2048,
            8192,
            Mode::NonIncremental,
            Strategy::SingleSegment,
            &cfg,
        );
        assert!(non_inc.cost().shared_mem_per_block > single.cost().shared_mem_per_block);
    }
}
