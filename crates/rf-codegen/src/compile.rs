//! Top-level compilation entry point: workload → tuned fused kernel.

use std::sync::Arc;
use std::time::Instant;

use rf_gpusim::{estimate_latency, GpuArch, KernelProfile};
use rf_tile::exec::{ExecBinding, ExecError, ExecInput, ExecOutput, Semantics};
use rf_tile::{TensorizeConfig, TileProgram};
use rf_workloads::{
    InertiaConfig, MhaConfig, MlaConfig, MoeConfig, Precision, QuantGemmConfig, VarianceConfig,
};

use crate::lower::{attention_program, cascade_program, AttentionShape, AttentionTiling};
use crate::strategy::Mode;
use crate::tuner::{
    AutoTuner, PointFootprint, SearchMode, TuneHooks, TuningCache, TuningChoice, TuningPoint,
};

/// Options for [`compile_workload_with`]: how the auto-tuner searches and
/// whether it warm-starts from (and records into) a shared [`TuningCache`].
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// The tuner search mode ([`SearchMode::Guided`] by default;
    /// [`SearchMode::Exhaustive`] is the oracle).
    pub mode: SearchMode,
    /// Warm-start cache shared across compilations (keyed by
    /// [`Workload::class`] and architecture fingerprint).
    pub tuning_cache: Option<Arc<TuningCache>>,
    /// Debug-build verification of the guided search against the exhaustive
    /// oracle (see [`AutoTuner::with_oracle_check`]).
    pub oracle_check: bool,
}

/// A workload RedFuser can compile end-to-end.
///
/// All variants carry integer-only shape descriptions, so `Workload` derives
/// `Eq`/`Hash` and serves as the workload half of a [`PlanKey`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Multi-Head Attention (Table 2a).
    Mha(MhaConfig),
    /// Multi-Latent Attention decode (Table 2b).
    Mla(MlaConfig),
    /// MoE routing (Table 2c).
    Moe(MoeConfig),
    /// FP8 PerToken Quant + GEMM (Table 2d).
    Quant(QuantGemmConfig),
    /// Batched variance (Table 3a).
    Variance(VarianceConfig),
    /// Moment of inertia (Table 3b).
    Inertia(InertiaConfig),
    /// A standalone batched safe softmax of `rows` rows of length `len`.
    Softmax {
        /// Number of independent rows.
        rows: usize,
        /// Row length.
        len: usize,
    },
}

impl Workload {
    /// Display name of the workload instance.
    pub fn name(&self) -> String {
        match self {
            Workload::Mha(c) => format!("mha_{}", c.name),
            Workload::Mla(c) => format!("mla_{}", c.name),
            Workload::Moe(c) => format!("moe_{}", c.name),
            Workload::Quant(c) => format!("quant_{}", c.name),
            Workload::Variance(c) => format!("variance_{}", c.name),
            Workload::Inertia(c) => format!("inertia_{}", c.name),
            Workload::Softmax { rows, len } => format!("softmax_{rows}x{len}"),
        }
    }

    /// The workload class, shared by every shape of one family — the key the
    /// [`TuningCache`] warm-starts under (a winning launch configuration for
    /// one MHA shape is a good starting point for the next MHA shape).
    pub fn class(&self) -> &'static str {
        match self {
            Workload::Mha(_) => "mha",
            Workload::Mla(_) => "mla",
            Workload::Moe(_) => "moe",
            Workload::Quant(_) => "quant",
            Workload::Variance(_) => "variance",
            Workload::Inertia(_) => "inertia",
            Workload::Softmax { .. } => "softmax",
        }
    }

    /// The canonical cascaded-reduction specification of this workload's
    /// class — the **single source of truth** shared by the fusion analysis,
    /// the lowering and the graph-frontend detector.
    ///
    /// The specs themselves are the constructors in `rf_fusion::patterns`;
    /// this accessor is the one place that maps a compilable workload to its
    /// cascade. The lowering derives its per-family reduction count from it
    /// ([`Workload::lowered_reductions`]) and `rf-graph`'s detector matches
    /// candidate regions against it, so a pattern change propagates to every
    /// layer instead of having to be repeated in three hand-maintained lists.
    pub fn cascade_spec(&self) -> rf_fusion::CascadeSpec {
        use rf_fusion::patterns;
        match self {
            // The attention output row: softmax statistics plus the weighted
            // sum over value components (Appendix A.2.1).
            Workload::Mha(_) | Workload::Mla(_) => patterns::attention_row(),
            Workload::Softmax { .. } => patterns::safe_softmax(),
            // The softmax part of routing; the segmented top-k selection is
            // an extra lowered pass (see `lowered_reductions`).
            Workload::Moe(_) => patterns::moe_routing_scores(),
            Workload::Quant(_) => patterns::fp8_quant_gemm(),
            Workload::Variance(_) => patterns::variance_sufficient_stats(),
            Workload::Inertia(_) => patterns::inertia_sufficient_stats(),
        }
    }

    /// Number of reduction passes the tile-program lowering materialises for
    /// this workload: the cascade's reduction count, plus the segmented top-k
    /// selection pass for MoE routing that `rf_fusion::patterns` documents as
    /// handled outside the softmax cascade.
    pub fn lowered_reductions(&self) -> usize {
        let base = self.cascade_spec().len();
        match self {
            Workload::Moe(_) => base + 1,
            _ => base,
        }
    }
}

/// The canonical cache key for one compilation: the workload shape plus the
/// target architecture's name and a fingerprint of its numeric parameters.
///
/// [`GpuArch`] itself carries floating-point throughput numbers and therefore
/// cannot implement `Hash`/`Eq` directly; the fingerprint folds the canonical
/// IEEE-754 bit patterns of every field into a `u64`, so a preset whose `pub`
/// fields were tweaked (a what-if study) keys differently from the stock
/// preset of the same name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// The workload shape being compiled.
    pub workload: Workload,
    /// The target architecture's name (e.g. `"NVIDIA A10"`), kept for display.
    pub arch: &'static str,
    /// Hash of the architecture's full parameter set (bit-exact).
    pub arch_fingerprint: u64,
}

impl PlanKey {
    /// Builds the cache key for compiling `workload` on `arch`.
    pub fn new(workload: &Workload, arch: &GpuArch) -> Self {
        PlanKey {
            workload: workload.clone(),
            arch: arch.name,
            arch_fingerprint: arch_fingerprint(arch),
        }
    }
}

/// Folds every latency-relevant [`GpuArch`] field (floats via their canonical
/// bit patterns) into a stable-within-process `u64`. Callers that build many
/// keys for one architecture (e.g. the `rf-runtime` plan cache) can compute
/// this once and assemble [`PlanKey`]s from its public fields.
///
/// Thin forwarding wrapper around [`GpuArch::fingerprint`], kept so existing
/// callers (and the `PlanKey` constructor above) need no `rf-gpusim` import.
pub fn arch_fingerprint(arch: &GpuArch) -> u64 {
    arch.fingerprint()
}

/// Wall-clock cost of producing one [`CompiledKernel`], for the runtime's
/// per-stage telemetry (`rf-trace`): how much of a cache miss went to the
/// auto-tuner search versus lowering and profile construction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompileTiming {
    /// Total wall time of [`compile_workload_with`], in microseconds.
    pub total_us: f64,
    /// Wall time spent inside the auto-tuner search, in microseconds
    /// (a subset of `total_us`; zero for accounting-only compilations).
    pub tune_us: f64,
}

/// The result of compiling one workload for one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    /// Workload name.
    pub name: String,
    /// The fully-bound tile program. Every workload family lowers to one; it
    /// carries the [`ExecBinding`] the `rf_tile::exec` VM interprets, so the
    /// compiled artifact is executable, not just costable.
    pub program: Option<TileProgram>,
    /// The kernel profile handed to the GPU model.
    pub profile: KernelProfile,
    /// Estimated latency on the target architecture, in microseconds.
    pub latency_us: f64,
    /// The auto-tuning choice that produced the kernel.
    pub tuning: TuningChoice,
    /// Wall-clock compile/tune cost of producing this kernel.
    pub timing: CompileTiming,
}

impl CompiledKernel {
    /// Executes the compiled kernel over real tensors by interpreting its
    /// tile program on the `rf_tile::exec` VM. The execution honours exactly
    /// the tuned tile sizes and segment strategy the auto-tuner chose — this
    /// is the path the `rf-runtime` engine serves.
    ///
    /// # Errors
    ///
    /// [`ExecError::NotExecutable`] if the kernel carries no program, and the
    /// VM's input/shape mismatch errors for tensors that do not feed the
    /// program's binding.
    pub fn run(&self, input: &ExecInput<'_>) -> Result<ExecOutput, ExecError> {
        let program = self
            .program
            .as_ref()
            .ok_or_else(|| ExecError::NotExecutable {
                program: self.name.clone(),
            })?;
        rf_tile::exec::execute(program, input)
    }

    /// Executes the compiled kernel like [`CompiledKernel::run`] and
    /// additionally returns the tile-VM's op-level profile
    /// ([`rf_tile::ExecProfile`]): per-op invocation/row/byte counts plus
    /// the measured wall time. The numeric output is bit-identical to
    /// [`CompiledKernel::run`]'s — the profiled VM entry point wraps the
    /// same interpreter.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`CompiledKernel::run`].
    pub fn run_profiled(
        &self,
        input: &ExecInput<'_>,
    ) -> Result<(ExecOutput, rf_tile::ExecProfile), ExecError> {
        let program = self
            .program
            .as_ref()
            .ok_or_else(|| ExecError::NotExecutable {
                program: self.name.clone(),
            })?;
        rf_tile::exec::execute_profiled(program, input)
    }
}

/// Clamps an attention tuning point to the shape, exactly as the tuner's
/// canonicalization hook does, and builds the lowering tiling for it.
fn attention_tiling_for(shape: &AttentionShape, point: &TuningPoint) -> AttentionTiling {
    AttentionTiling {
        block_q: point.block_rows.min(shape.q_len).max(1),
        block_kv: point.block_axis.min(shape.kv_len).max(1),
        threads: point.threads,
        pipeline_depth: point.pipeline_depth,
    }
}

/// Lowers an attention shape at one tuning point to a fully-bound program:
/// the Figure 12b/13b tile structure plus the [`ExecBinding`] the VM needs.
fn bound_attention_program(
    shape: &AttentionShape,
    point: &TuningPoint,
    qk_dim: usize,
    head_dim: usize,
) -> TileProgram {
    let tiling = attention_tiling_for(shape, point);
    let mut program = attention_program(shape, &tiling, point.strategy());
    program.binding = Some(ExecBinding {
        semantics: Semantics::Attention { qk_dim, head_dim },
        rows: shape.q_len,
        axis_len: shape.kv_len,
        block_rows: tiling.block_q,
        block_axis: tiling.block_kv,
        segments: (point.segments.max(1) as usize).min(shape.kv_len.max(1)),
    });
    program
}

/// Lowers a row-parallel cascade at one tuning point to a fully-bound program
/// (the tensorization pass plus the [`ExecBinding`]).
fn bound_cascade_program(
    name: &str,
    num_reductions: usize,
    rows: usize,
    axis_len: usize,
    element_bytes: u32,
    semantics: Semantics,
    point: &TuningPoint,
) -> TileProgram {
    let cfg = TensorizeConfig {
        block_rows: point.block_rows,
        block_axis: point.block_axis,
        threads_per_block: point.threads,
        pipeline_depth: point.pipeline_depth,
        element_bytes,
        incremental: true,
    };
    let segments = (point.segments.max(1) as usize).min(axis_len.max(1));
    let mut program = cascade_program(
        name,
        num_reductions,
        rows,
        axis_len,
        Mode::Incremental,
        point.strategy(),
        &cfg,
    );
    program.binding = Some(ExecBinding {
        semantics,
        rows,
        axis_len,
        block_rows: point.block_rows.min(rows).max(1),
        block_axis: point.block_axis.min(axis_len.div_ceil(segments)).max(1),
        segments,
    });
    program
}

/// The fully-bound executable tile program for `workload` at an arbitrary
/// tuning point — the artifact [`compile_workload`] attaches for the winning
/// point, exposed so verification harnesses can pin the point themselves and
/// prove that tuning choices change cost, never results.
pub fn executable_program(workload: &Workload, point: &TuningPoint) -> TileProgram {
    let name = workload.name();
    // The per-family reduction count comes from the canonical cascade spec
    // (`Workload::cascade_spec`), not a hand-maintained table.
    let num = workload.lowered_reductions();
    match workload {
        Workload::Mha(c) => {
            let shape = AttentionShape::from_mha(c);
            bound_attention_program(&shape, point, shape.qk_dim, shape.head_dim)
        }
        Workload::Mla(c) => {
            let shape = AttentionShape::from_mla(c);
            bound_attention_program(&shape, point, shape.qk_dim, shape.head_dim)
        }
        Workload::Softmax { rows, len } => {
            bound_cascade_program(&name, num, *rows, *len, 2, Semantics::Softmax, point)
        }
        Workload::Variance(c) => {
            bound_cascade_program(&name, num, c.bs, c.l, 4, Semantics::Variance, point)
        }
        Workload::Moe(c) => bound_cascade_program(
            &name,
            num,
            c.s,
            c.en,
            2,
            Semantics::Routing { topk: c.topk },
            point,
        ),
        Workload::Quant(c) => bound_cascade_program(
            &name,
            num,
            c.m,
            c.k,
            1,
            Semantics::QuantGemm { n: c.n },
            point,
        ),
        Workload::Inertia(c) => bound_cascade_program(
            &name,
            num,
            c.bs,
            c.n,
            4,
            Semantics::Inertia { dim: c.dim },
            point,
        ),
    }
}

fn tuner_for(arch: &GpuArch, class: &'static str, opts: &CompileOptions) -> AutoTuner {
    let mut tuner = AutoTuner::new(arch.clone())
        .with_mode(opts.mode)
        .with_oracle_check(opts.oracle_check);
    if let Some(cache) = &opts.tuning_cache {
        tuner = tuner.with_cache(Arc::clone(cache), class);
    }
    tuner
}

fn tuned_attention(
    shape: AttentionShape,
    arch: &GpuArch,
    name: &str,
    class: &'static str,
    opts: &CompileOptions,
) -> CompiledKernel {
    let tuner = tuner_for(arch, class, opts);
    // Canonicalization mirrors the clamps `attention_program` applies, so two
    // raw points building the identical kernel are evaluated once.
    let normalize = |p: &TuningPoint| TuningPoint {
        block_rows: p.block_rows.min(shape.q_len).max(1),
        block_axis: p.block_axis.min(shape.kv_len).max(1),
        threads: p.threads,
        pipeline_depth: p.pipeline_depth,
        segments: p.segments.max(1),
    };
    // Exactly the shared-memory footprint of the Q/K/V staging buffers the
    // lowering allocates (the combine kernel uses no shared memory).
    let footprint = |p: &TuningPoint| PointFootprint {
        threads_per_block: p.threads,
        shared_mem_per_block: 2
            * (p.block_rows * shape.qk_dim
                + p.block_axis * shape.qk_dim
                + p.block_axis * shape.head_dim) as u64,
    };
    let build = |p: &TuningPoint| {
        let program = bound_attention_program(&shape, p, shape.qk_dim, shape.head_dim);
        let mut profile = KernelProfile::from_tile_program(&program);
        // Hardware-aware implementation selection (§4.4): MMA/WGMMA mapping
        // and cp.async/TMA copies lift the fused kernel close to peak.
        profile.compute_efficiency = 0.75;
        profile
    };
    let tune_started = Instant::now();
    let choice = tuner.tune_with_hooks(
        &build,
        TuneHooks {
            normalize: Some(&normalize),
            footprint: Some(&footprint),
        },
    );
    let tune_us = tune_started.elapsed().as_secs_f64() * 1e6;
    // Rebuild the winning program so callers can inspect, dump and execute it.
    let program = bound_attention_program(&shape, &choice.point, shape.qk_dim, shape.head_dim);
    CompiledKernel {
        name: name.to_string(),
        program: Some(program),
        profile: choice.profile.clone(),
        latency_us: choice.latency_us,
        tuning: choice,
        timing: CompileTiming {
            total_us: 0.0,
            tune_us,
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn tuned_cascade(
    name: &str,
    num_reductions: usize,
    rows: usize,
    axis_len: usize,
    semantics: Semantics,
    arch: &GpuArch,
    class: &'static str,
    opts: &CompileOptions,
) -> CompiledKernel {
    const ELEMENT_BYTES: u32 = 2;
    let tuner = tuner_for(arch, class, opts);
    // Mirror the clamps of `tensorize_cascade`: the cascade is lowered with
    // `rows * segments` effective rows over `ceil(axis_len / segments)` axis
    // elements per segment, so larger tile sizes collapse onto those bounds.
    let normalize = |p: &TuningPoint| {
        let segments = p.segments.max(1);
        TuningPoint {
            block_rows: p.block_rows.min(rows * segments as usize).max(1),
            block_axis: p
                .block_axis
                .min(axis_len.div_ceil(segments as usize))
                .max(1),
            threads: p.threads,
            pipeline_depth: p.pipeline_depth,
            segments,
        }
    };
    // The incremental lowering stages exactly one input tile in shared memory
    // (the combine kernel uses none).
    let footprint = |p: &TuningPoint| PointFootprint {
        threads_per_block: p.threads,
        shared_mem_per_block: (p.block_rows * p.block_axis) as u64 * ELEMENT_BYTES as u64,
    };
    let build = |p: &TuningPoint| {
        let program = bound_cascade_program(
            name,
            num_reductions,
            rows,
            axis_len,
            ELEMENT_BYTES,
            semantics,
            p,
        );
        KernelProfile::from_tile_program(&program)
    };
    let tune_started = Instant::now();
    let choice = tuner.tune_with_hooks(
        &build,
        TuneHooks {
            normalize: Some(&normalize),
            footprint: Some(&footprint),
        },
    );
    let tune_us = tune_started.elapsed().as_secs_f64() * 1e6;
    let program = bound_cascade_program(
        name,
        num_reductions,
        rows,
        axis_len,
        ELEMENT_BYTES,
        semantics,
        &choice.point,
    );
    CompiledKernel {
        name: name.to_string(),
        program: Some(program),
        profile: choice.profile.clone(),
        latency_us: choice.latency_us,
        tuning: choice,
        timing: CompileTiming {
            total_us: 0.0,
            tune_us,
        },
    }
}

/// Builds a single fused-kernel profile from a workload's minimal traffic and
/// flop accounting (used for the GEMM-dominated workloads whose fused kernels
/// load every operand exactly once).
fn fused_profile_from_accounting(
    name: &str,
    flops: u64,
    hbm_bytes: u64,
    blocks: u64,
    precision: &'static str,
    arch: &GpuArch,
) -> CompiledKernel {
    let profile = KernelProfile {
        name: name.to_string(),
        flops,
        hbm_bytes,
        blocks: blocks.max(64),
        threads_per_block: 256,
        shared_mem_per_block: 64 * 1024,
        precision,
        compute_efficiency: 0.72,
        overlap: 0.9,
        launches: 1,
    };
    let latency_us = estimate_latency(arch, &profile).total_us;
    let tuning = TuningChoice {
        point: TuningPoint {
            block_rows: 128,
            block_axis: 128,
            threads: 256,
            pipeline_depth: 2,
            segments: 1,
        },
        profile: profile.clone(),
        latency_us,
        evaluated: 1,
        space_size: 1,
        mode: SearchMode::Exhaustive,
    };
    CompiledKernel {
        name: name.to_string(),
        program: None,
        profile,
        latency_us,
        tuning,
        timing: CompileTiming::default(),
    }
}

/// Compiles a workload with RedFuser for one architecture: lowering, strategy
/// selection and auto-tuning with the default [`CompileOptions`] (guided
/// search, no warm-start cache), returning the tuned fused kernel.
pub fn compile_workload(workload: &Workload, arch: &GpuArch) -> CompiledKernel {
    compile_workload_with(workload, arch, &CompileOptions::default())
}

/// Like [`compile_workload`], with explicit tuner options (search mode,
/// warm-start [`TuningCache`], oracle verification).
pub fn compile_workload_with(
    workload: &Workload,
    arch: &GpuArch,
    opts: &CompileOptions,
) -> CompiledKernel {
    let compile_started = Instant::now();
    let class = workload.class();
    let mut kernel = match workload {
        Workload::Mha(c) => tuned_attention(
            AttentionShape::from_mha(c),
            arch,
            &workload.name(),
            class,
            opts,
        ),
        Workload::Mla(c) => tuned_attention(
            AttentionShape::from_mla(c),
            arch,
            &workload.name(),
            class,
            opts,
        ),
        Workload::Softmax { rows, len } => tuned_cascade(
            &workload.name(),
            workload.lowered_reductions(),
            *rows,
            *len,
            Semantics::Softmax,
            arch,
            class,
            opts,
        ),
        Workload::Moe(c) => {
            // Scoring GEMM + softmax + top-k fused into one pass over experts.
            let correction_flops = 6 * (c.s * c.en) as u64;
            fused_profile_from_accounting(
                &workload.name(),
                c.flops() + correction_flops,
                c.min_bytes(Precision::Fp16),
                (c.s as u64).div_ceil(2),
                "fp16",
                arch,
            )
        }
        Workload::Quant(c) => {
            let correction_flops = 2 * (c.m * c.n) as u64;
            fused_profile_from_accounting(
                &workload.name(),
                c.flops() + correction_flops,
                c.min_bytes(),
                ((c.m / 128).max(1) * (c.n / 128).max(1)) as u64,
                "fp8",
                arch,
            )
        }
        Workload::Variance(c) => fused_profile_from_accounting(
            &workload.name(),
            c.flops(),
            c.min_bytes(),
            (c.bs as u64).max(64),
            "fp32",
            arch,
        ),
        Workload::Inertia(c) => fused_profile_from_accounting(
            &workload.name(),
            c.flops(),
            c.min_bytes(),
            (c.bs as u64).max(64),
            "fp32",
            arch,
        ),
    };
    // Every compiled kernel ships an executable program: the GEMM-dominated
    // workloads keep their traffic-accounting cost profile but are lowered at
    // the chosen point so the runtime can interpret them like everything else.
    if kernel.program.is_none() {
        kernel.program = Some(executable_program(workload, &kernel.tuning.point));
    }
    kernel.timing.total_us = compile_started.elapsed().as_secs_f64() * 1e6;
    kernel
}

/// Compiles a workload and wraps the result in an [`Arc`] so it can be shared
/// across threads (the `rf-runtime` plan cache stores these; executing a
/// cached kernel never clones the tile program).
pub fn compile_workload_arc(workload: &Workload, arch: &GpuArch) -> Arc<CompiledKernel> {
    Arc::new(compile_workload(workload, arch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_baselines::{mha_op_list, moe_op_list, quant_op_list, CompilerBaseline};
    use rf_gpusim::sequence_latency;
    use rf_workloads::{mha_configs, mla_configs, moe_configs, quant_configs};

    #[test]
    fn redfuser_beats_compiler_baselines_on_attention() {
        let arch = GpuArch::a10();
        for config in mha_configs().iter().take(3) {
            let fused = compile_workload(&Workload::Mha(config.clone()), &arch);
            let eager = sequence_latency(
                &arch,
                &CompilerBaseline::PyTorchEager.kernels(&mha_op_list(config)),
            );
            let dynamo = sequence_latency(
                &arch,
                &CompilerBaseline::Dynamo.kernels(&mha_op_list(config)),
            );
            assert!(
                fused.latency_us < dynamo.min(eager),
                "{}: fused must win",
                config.name
            );
        }
    }

    #[test]
    fn redfuser_is_close_to_flash_attention2() {
        let arch = GpuArch::a10();
        let config = &mha_configs()[1];
        let fused = compile_workload(&Workload::Mha(config.clone()), &arch);
        let fa2 = estimate_latency(&arch, &rf_baselines::flash_attention2_profile(config)).total_us;
        let ratio = fa2 / fused.latency_us;
        assert!((0.7..=1.6).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn multi_segment_helps_low_concurrency_decode() {
        // With very few attention heads the Single-Segment strategy cannot
        // fill the GPU; splitting the KV axis across blocks recovers
        // utilisation (the FlashDecoding argument, §4.3).
        use crate::lower::{attention_program, AttentionShape, AttentionTiling};
        use crate::strategy::Strategy;
        let arch = GpuArch::h800();
        let shape = AttentionShape {
            heads: 16,
            q_len: 1,
            kv_len: 8192,
            head_dim: 512,
            qk_dim: 576,
        };
        let tiling = AttentionTiling {
            block_kv: 64,
            ..AttentionTiling::default()
        };
        let single = KernelProfile::from_tile_program(&attention_program(
            &shape,
            &tiling,
            Strategy::SingleSegment,
        ));
        let multi = KernelProfile::from_tile_program(&attention_program(
            &shape,
            &tiling,
            Strategy::MultiSegment { segments: 8 },
        ));
        let single_us = estimate_latency(&arch, &single).total_us;
        let multi_us = estimate_latency(&arch, &multi).total_us;
        assert!(multi_us < single_us, "multi={multi_us} single={single_us}");
        // And the end-to-end compilation of a real decode config stays finite.
        let config = mla_configs().into_iter().find(|c| c.name == "L9").unwrap();
        let fused = compile_workload(&Workload::Mla(config), &arch);
        assert!(fused.latency_us.is_finite());
    }

    #[test]
    fn moe_and_quant_beat_their_baselines() {
        let a10 = GpuArch::a10();
        let h800 = GpuArch::h800();
        let moe = &moe_configs()[0];
        let fused = compile_workload(&Workload::Moe(moe.clone()), &a10);
        let dynamo = sequence_latency(&a10, &CompilerBaseline::Dynamo.kernels(&moe_op_list(moe)));
        assert!(fused.latency_us < dynamo);
        let quant = &quant_configs()[4];
        let fused = compile_workload(&Workload::Quant(quant.clone()), &h800);
        let tvm = sequence_latency(&h800, &CompilerBaseline::Tvm.kernels(&quant_op_list(quant)));
        assert!(fused.latency_us < tvm);
    }

    #[test]
    fn workload_names_are_descriptive() {
        assert_eq!(Workload::Softmax { rows: 4, len: 8 }.name(), "softmax_4x8");
        assert!(Workload::Mha(mha_configs()[0].clone())
            .name()
            .contains("H1"));
    }

    #[test]
    fn cascade_specs_are_fusable_and_drive_the_lowering_counts() {
        use rf_workloads::{inertia_tiny, mha_tiny, mla_tiny, moe_tiny, variance_tiny};
        let workloads = [
            Workload::Mha(mha_tiny()),
            Workload::Mla(mla_tiny()),
            Workload::Moe(moe_tiny()),
            Workload::Quant(quant_configs()[0].clone()),
            Workload::Variance(variance_tiny()),
            Workload::Inertia(inertia_tiny()),
            Workload::Softmax { rows: 4, len: 8 },
        ];
        for w in &workloads {
            let spec = w.cascade_spec();
            assert!(
                rf_fusion::analyze_cascade(&spec).is_ok(),
                "{}: canonical cascade must be fusable",
                w.name()
            );
            // The lowering count is derived from the spec (plus the documented
            // top-k selection pass for routing), never hand-maintained.
            let extra = usize::from(matches!(w, Workload::Moe(_)));
            assert_eq!(w.lowered_reductions(), spec.len() + extra, "{}", w.name());
        }
        // Families sharing a class share one spec.
        assert_eq!(
            Workload::Mha(mha_tiny()).cascade_spec().name,
            Workload::Mla(mla_tiny()).cascade_spec().name
        );
    }

    #[test]
    fn plan_keys_distinguish_workload_and_arch() {
        use std::collections::HashSet;
        let softmax = Workload::Softmax { rows: 8, len: 16 };
        let moe = Workload::Moe(moe_configs()[0].clone());
        let mut keys = HashSet::new();
        for arch in GpuArch::all() {
            keys.insert(PlanKey::new(&softmax, &arch));
            keys.insert(PlanKey::new(&moe, &arch));
        }
        assert_eq!(keys.len(), 8);
        // Same workload + same arch collapses to the same key.
        assert_eq!(
            PlanKey::new(&softmax, &GpuArch::a10()),
            PlanKey::new(&softmax.clone(), &GpuArch::a10())
        );
        // Tweaking any numeric parameter of a preset changes the key even
        // though the name is unchanged.
        let mut tweaked = GpuArch::a10();
        tweaked.mem_bandwidth_bytes_per_us *= 2.0;
        assert_ne!(
            PlanKey::new(&softmax, &tweaked),
            PlanKey::new(&softmax, &GpuArch::a10())
        );
    }

    #[test]
    fn guided_search_matches_oracle_on_tiny_configs() {
        // Exercises the debug assertion in `AutoTuner::tune` (pruned search
        // within 5% of the exhaustive oracle) on every tuned tiny workload.
        use rf_workloads::{mha_tiny, mla_tiny};
        let opts = CompileOptions {
            oracle_check: true,
            ..CompileOptions::default()
        };
        for arch in [GpuArch::a10(), GpuArch::h800()] {
            for workload in [
                Workload::Mha(mha_tiny()),
                Workload::Mla(mla_tiny()),
                Workload::Softmax { rows: 32, len: 128 },
            ] {
                let guided = compile_workload_with(&workload, &arch, &opts);
                let oracle = compile_workload_with(
                    &workload,
                    &arch,
                    &CompileOptions {
                        mode: SearchMode::Exhaustive,
                        ..CompileOptions::default()
                    },
                );
                assert!(
                    guided.latency_us <= oracle.latency_us * 1.05,
                    "{}: guided {} vs oracle {}",
                    workload.name(),
                    guided.latency_us,
                    oracle.latency_us
                );
                assert!(
                    guided.tuning.evaluated < oracle.tuning.evaluated,
                    "{}: guided must evaluate fewer candidates",
                    workload.name()
                );
            }
        }
    }

    #[test]
    fn dedup_shrinks_the_search_on_clamped_shapes() {
        // The tiny MLA decode shape clamps every oversized tile size, so the
        // canonicalization stage must collapse large parts of the space.
        let oracle = compile_workload_with(
            &Workload::Mla(rf_workloads::mla_tiny()),
            &GpuArch::a10(),
            &CompileOptions {
                mode: SearchMode::Exhaustive,
                ..CompileOptions::default()
            },
        );
        assert!(
            oracle.tuning.evaluated * 2 <= oracle.tuning.space_size,
            "evaluated {} of {} raw points",
            oracle.tuning.evaluated,
            oracle.tuning.space_size
        );
    }

    #[test]
    fn fp8_quant_tile_programs_are_not_costed_at_fp16_rate() {
        // Regression: `KernelProfile::from_tile_program` hardcoded fp16, so
        // FP8 quant-GEMM tile programs were rated against fp16 throughput.
        use crate::strategy::Strategy;
        let c = &quant_configs()[0];
        let arch = GpuArch::h800();
        let fp8_cfg = TensorizeConfig {
            element_bytes: 1,
            ..TensorizeConfig::default()
        };
        let fp16_cfg = TensorizeConfig {
            element_bytes: 2,
            ..TensorizeConfig::default()
        };
        let fp8 = cascade_program(
            "quant",
            2,
            c.m,
            c.k,
            Mode::Incremental,
            Strategy::SingleSegment,
            &fp8_cfg,
        );
        let fp16 = cascade_program(
            "quant",
            2,
            c.m,
            c.k,
            Mode::Incremental,
            Strategy::SingleSegment,
            &fp16_cfg,
        );
        let fp8_profile = KernelProfile::from_tile_program(&fp8);
        assert_eq!(fp8_profile.precision, "fp8");
        assert_eq!(KernelProfile::from_tile_program(&fp16).precision, "fp16");
        // The exact regression: the same fp8 kernel rated at fp16 throughput
        // (what the hardcoded tag used to do) must be estimated slower than
        // the correct fp8 rating on an fp8-capable part.
        let misrated = KernelProfile {
            precision: "fp16",
            ..fp8_profile.clone()
        };
        let fp8_us = estimate_latency(&arch, &fp8_profile).total_us;
        let misrated_us = estimate_latency(&arch, &misrated).total_us;
        assert!(
            fp8_us < misrated_us,
            "fp8 {fp8_us} vs fp16-misrated {misrated_us}"
        );
        // And the end-to-end quant compilation keeps its fp8 rating.
        let compiled = compile_workload(&Workload::Quant(c.clone()), &arch);
        assert_eq!(compiled.profile.precision, "fp8");
    }

    #[test]
    fn tuning_cache_warm_starts_across_shapes_of_one_class() {
        let arch = GpuArch::a10();
        let cache = std::sync::Arc::new(TuningCache::new());
        let opts = CompileOptions {
            tuning_cache: Some(std::sync::Arc::clone(&cache)),
            ..CompileOptions::default()
        };
        let cold = compile_workload_with(
            &Workload::Softmax {
                rows: 512,
                len: 2048,
            },
            &arch,
            &opts,
        );
        let warm = compile_workload_with(
            &Workload::Softmax {
                rows: 512,
                len: 4096,
            },
            &arch,
            &opts,
        );
        let stats = cache.stats();
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.seeded, 1, "second compile warm-starts");
        assert_eq!(stats.insertions, 2);
        assert_eq!(stats.entries, 1, "one (class, arch) key");
        assert!(cold.latency_us.is_finite() && warm.latency_us.is_finite());
    }

    #[test]
    fn arc_compile_matches_direct_compile() {
        let arch = GpuArch::a10();
        let workload = Workload::Softmax { rows: 64, len: 256 };
        let shared = compile_workload_arc(&workload, &arch);
        let direct = compile_workload(&workload, &arch);
        // Wall-clock compile timing legitimately differs between two runs;
        // everything the kernel *is* must not.
        let mut shared = (*shared).clone();
        let mut direct = direct;
        assert!(shared.timing.total_us >= shared.timing.tune_us);
        assert!(shared.timing.tune_us >= 0.0);
        shared.timing = CompileTiming::default();
        direct.timing = CompileTiming::default();
        assert_eq!(shared, direct);
    }

    #[test]
    fn compile_timing_accounts_tune_inside_total() {
        let arch = GpuArch::a10();
        // A tuned cascade searches a real space: tune time is non-zero and
        // bounded by the total compile wall time.
        let kernel = compile_workload(&Workload::Softmax { rows: 32, len: 128 }, &arch);
        assert!(kernel.timing.total_us > 0.0);
        assert!(kernel.timing.tune_us > 0.0);
        assert!(kernel.timing.total_us >= kernel.timing.tune_us);
        // Accounting-only compilations skip the tuner entirely.
        let moe = compile_workload(&Workload::Moe(rf_workloads::moe_tiny()), &arch);
        assert_eq!(moe.timing.tune_us, 0.0);
        assert!(moe.timing.total_us > 0.0);
    }
}
