//! Fusion-level and computation-mode latency models (Figures 6a and 6b).

use rf_gpusim::{estimate_latency, GpuArch, KernelProfile};

use crate::strategy::{FusionLevel, Mode};

/// Latency of the safe-softmax cascade fused at one level vs the unfused
/// two-kernel execution (the experiment of §5.3 / Figure 6a).
#[derive(Debug, Clone, PartialEq)]
pub struct FusionLevelReport {
    /// The fusion level.
    pub level: FusionLevel,
    /// Input length per row.
    pub input_len: usize,
    /// Estimated latency of the fused kernel, in microseconds.
    pub fused_us: f64,
    /// Estimated latency of the unfused execution, in microseconds.
    pub unfused_us: f64,
    /// Normalized performance (unfused latency / fused latency), > 1 means the
    /// fusion helps.
    pub normalized: f64,
}

/// Models the §5.3 experiment: batched safe softmax over `rows` rows of
/// `input_len` elements, fused at `level`, on `arch`.
pub fn fusion_level_latency(
    arch: &GpuArch,
    rows: usize,
    input_len: usize,
    level: FusionLevel,
) -> FusionLevelReport {
    let threads = 256usize;
    let blocks = rows;
    let bytes = (rows * input_len * 2) as u64;
    let base_flops = (rows * input_len * 4) as u64;

    // Unfused: two reduction kernels, each re-reading the input, no overlap
    // between the dependent reductions.
    let unfused_kernel = KernelProfile {
        name: "softmax_unfused_pass".into(),
        flops: base_flops / 2,
        hbm_bytes: bytes,
        blocks: blocks as u64,
        threads_per_block: threads as u32,
        shared_mem_per_block: 16 * 1024,
        overlap: 0.5,
        ..Default::default()
    };
    let unfused_us = 2.0 * estimate_latency(arch, &unfused_kernel).total_us;

    // Fused: the input is read once; corrections add flops proportional to the
    // level's output length L_k; the level also determines how much of the
    // dependent reduction overlaps the memory traffic. The inter-block level
    // needs a second (combine) launch because blocks must synchronise.
    let corrections = level.correction_count(input_len, threads, 1) * rows;
    let fused_kernel = KernelProfile {
        name: format!("softmax_fused_{}", level.name()),
        flops: base_flops + 3 * corrections as u64,
        hbm_bytes: bytes,
        blocks: blocks as u64,
        threads_per_block: threads as u32,
        shared_mem_per_block: 16 * 1024,
        overlap: level.overlap(),
        launches: if level == FusionLevel::InterBlock {
            2
        } else {
            1
        },
        ..Default::default()
    };
    let fused_us = estimate_latency(arch, &fused_kernel).total_us;
    FusionLevelReport {
        level,
        input_len,
        fused_us,
        unfused_us,
        normalized: unfused_us / fused_us,
    }
}

/// One point of the incremental vs non-incremental sweep (Figure 6b).
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalPoint {
    /// KV elements processed per CTA.
    pub kv_per_cta: usize,
    /// Resulting waves per SM.
    pub waves_per_sm: f64,
    /// Latency of the incremental kernel, in microseconds.
    pub incremental_us: f64,
    /// Latency of the non-incremental kernel, in microseconds — `None` when
    /// the configuration does not fit in on-chip memory.
    pub non_incremental_us: Option<f64>,
}

/// Sweeps the per-CTA segment length for the BERT-base attention pattern
/// (`rows` attention rows over a KV length of `kv_len`, head dimension
/// `head_dim`) and reports both computation modes at every parallelism level.
pub fn incremental_sweep(
    arch: &GpuArch,
    rows: usize,
    kv_len: usize,
    head_dim: usize,
    points: &[usize],
) -> Vec<IncrementalPoint> {
    points
        .iter()
        .map(|&kv_per_cta| {
            let kv_per_cta = kv_per_cta.clamp(1, kv_len);
            let ctas_per_row = kv_len.div_ceil(kv_per_cta);
            let blocks = (rows * ctas_per_row) as u64;
            let bytes = (rows * kv_len * head_dim * 2 * 2) as u64 / ctas_per_row.max(1) as u64
                * ctas_per_row as u64;
            let flops = (rows * kv_len * head_dim * 4) as u64;
            // Non-incremental mode must stage the whole per-CTA segment
            // (scores + value rows) in shared memory.
            let staged_bytes = (kv_per_cta * (head_dim + 1) * 4) as u64;

            let base = KernelProfile {
                name: "attention_mode_sweep".into(),
                flops,
                hbm_bytes: bytes,
                blocks,
                threads_per_block: 128,
                shared_mem_per_block: 32 * 1024,
                compute_efficiency: 0.7,
                overlap: 0.85,
                launches: if ctas_per_row > 1 { 2 } else { 1 },
                ..Default::default()
            };
            let incremental = KernelProfile {
                // Eq. 15 corrections on every streaming step.
                flops: flops + (rows * ctas_per_row * head_dim * 3) as u64 + (rows * kv_len) as u64,
                ..base.clone()
            };
            let non_incremental = KernelProfile {
                shared_mem_per_block: 32 * 1024 + staged_bytes,
                ..base.clone()
            };
            let breakdown = estimate_latency(arch, &incremental);
            let non_inc = Mode::NonIncremental
                .fits(arch, kv_per_cta, (head_dim + 1) * 4, 32 * 1024)
                .then(|| estimate_latency(arch, &non_incremental).total_us)
                .filter(|us| us.is_finite());
            IncrementalPoint {
                kv_per_cta,
                waves_per_sm: breakdown.waves_per_sm,
                incremental_us: breakdown.total_us,
                non_incremental_us: non_inc,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fusion_levels_beat_unfused() {
        let arch = GpuArch::a10();
        for level in FusionLevel::ALL {
            for len in [1024, 8192] {
                let report = fusion_level_latency(&arch, 4096, len, level);
                assert!(
                    report.normalized > 1.0,
                    "{} at {len}: {}",
                    level.name(),
                    report.normalized
                );
            }
        }
    }

    #[test]
    fn intra_block_is_the_fastest_level() {
        let arch = GpuArch::a10();
        let reports: Vec<FusionLevelReport> = FusionLevel::ALL
            .iter()
            .map(|&l| fusion_level_latency(&arch, 4096, 4096, l))
            .collect();
        let best = reports
            .iter()
            .max_by(|a, b| a.normalized.partial_cmp(&b.normalized).unwrap())
            .unwrap();
        assert_eq!(best.level, FusionLevel::IntraBlock);
        // Among the intra-kernel levels the paper's ordering holds: deeper
        // levels hide more latency (intra-thread < intra-warp < intra-block).
        assert!(reports[0].normalized < reports[1].normalized);
        assert!(reports[1].normalized < reports[2].normalized);
    }

    #[test]
    fn non_incremental_is_capacity_limited_but_faster_when_feasible() {
        let arch = GpuArch::a10();
        let points: Vec<usize> = vec![32, 64, 96, 128, 512, 4096];
        let sweep = incremental_sweep(&arch, 32 * 12, 512, 64, &points);
        assert_eq!(sweep.len(), points.len());
        // Long segments are infeasible for the non-incremental mode.
        assert!(sweep.last().unwrap().non_incremental_us.is_none());
        // Where both modes are feasible, the non-incremental mode is at least
        // as fast (no correction overhead) — the §5.4 observation.
        for point in sweep.iter().filter(|p| p.non_incremental_us.is_some()) {
            assert!(point.non_incremental_us.unwrap() <= point.incremental_us * 1.001);
        }
    }

    #[test]
    fn waves_per_sm_decreases_with_longer_segments() {
        let arch = GpuArch::a10();
        let sweep = incremental_sweep(&arch, 32 * 12, 512, 64, &[32, 256]);
        assert!(sweep[0].waves_per_sm > sweep[1].waves_per_sm);
    }
}
