//! Execution strategies, computation modes and fusion levels (§4.3, §5.3–5.4).

use rf_gpusim::GpuArch;

/// How the reduction axis is distributed over thread blocks (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// The whole reduction for one output row is handled by a single CTA,
    /// streaming over the axis with incremental updates. No inter-block
    /// communication is needed.
    SingleSegment,
    /// The axis is partitioned into `segments` parts handled by different
    /// CTAs whose partial results are merged by a combine kernel (Eq. 11) —
    /// the FlashDecoding pattern. Improves utilisation at low concurrency.
    MultiSegment {
        /// Number of segments the axis is split into.
        segments: u32,
    },
}

impl Strategy {
    /// The canonical strategy for a segment-count knob: any count above one
    /// selects Multi-Segment, everything else (including 0) collapses to
    /// Single-Segment. This is the rule the auto-tuner's dedup stage uses to
    /// stop re-evaluating `segments` values a strategy ignores.
    pub fn from_segments(segments: u32) -> Strategy {
        if segments > 1 {
            Strategy::MultiSegment { segments }
        } else {
            Strategy::SingleSegment
        }
    }

    /// Number of axis segments processed by independent blocks.
    pub fn segments(self) -> u32 {
        match self {
            Strategy::SingleSegment => 1,
            Strategy::MultiSegment { segments } => segments.max(1),
        }
    }

    /// Whether a separate combine kernel is required.
    pub fn needs_combine_kernel(self) -> bool {
        self.segments() > 1
    }
}

/// Incremental vs non-incremental computation (§3.3, Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Streaming updates with `O(1)` on-chip state and per-step corrections.
    Incremental,
    /// Stage the complete previous-level results on chip before reducing;
    /// cheaper per element but bounded by the shared-memory capacity.
    NonIncremental,
}

impl Mode {
    /// Whether a segment of `segment_len` elements of `bytes_per_element`-wide
    /// data (plus `state_bytes` of per-row state) fits the architecture's
    /// shared memory in this mode.
    ///
    /// Incremental mode always fits (its state is constant-sized); the
    /// non-incremental mode needs the whole segment resident, which is the
    /// constraint observed in §5.4 (feasible only for short sequences).
    pub fn fits(
        self,
        arch: &GpuArch,
        segment_len: usize,
        bytes_per_element: usize,
        state_bytes: usize,
    ) -> bool {
        match self {
            Mode::Incremental => true,
            Mode::NonIncremental => {
                (segment_len * bytes_per_element + state_bytes) as u64 <= arch.shared_mem_per_sm
            }
        }
    }

    /// Relative per-element correction overhead of the mode (incremental pays
    /// the Eq. 15 correction on every step).
    pub fn correction_flops_per_element(self, corrections: usize) -> usize {
        match self {
            Mode::Incremental => 3 * corrections,
            Mode::NonIncremental => 0,
        }
    }
}

/// The level of the reduction tree at which fusion is applied (§5.3, Fig. 6a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusionLevel {
    /// Fuse at level 1: every thread corrects its private partials.
    IntraThread,
    /// Fuse at level 2: corrections happen per warp.
    IntraWarp,
    /// Fuse at level 3: corrections happen per thread block.
    IntraBlock,
    /// Fuse at level 4: no corrections, but no overlap with the dependent
    /// reduction either (it waits for the final value).
    InterBlock,
}

impl FusionLevel {
    /// All levels in the order of Figure 6a.
    pub const ALL: [FusionLevel; 4] = [
        FusionLevel::IntraThread,
        FusionLevel::IntraWarp,
        FusionLevel::IntraBlock,
        FusionLevel::InterBlock,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FusionLevel::IntraThread => "intra-thread",
            FusionLevel::IntraWarp => "intra-warp",
            FusionLevel::IntraBlock => "intra-block",
            FusionLevel::InterBlock => "inter-block",
        }
    }

    /// Output length `L_k` of the level at which corrections are applied, for
    /// a launch of `threads` threads per block organised in warps of 32 over
    /// `blocks` blocks (the mapping of §4.3).
    pub fn correction_count(self, input_len: usize, threads: usize, blocks: usize) -> usize {
        match self {
            FusionLevel::IntraThread => input_len.min(threads * blocks).max(1),
            FusionLevel::IntraWarp => (threads / 32).max(1) * blocks,
            FusionLevel::IntraBlock => blocks.max(1),
            FusionLevel::InterBlock => 0,
        }
    }

    /// Fraction of the dependent reduction's memory latency that can be hidden
    /// behind the correction subtree at this level (§5.3: deeper subtrees give
    /// longer independent computation paths; the inter-block level has a full
    /// serial dependency and hides nothing).
    pub fn overlap(self) -> f64 {
        match self {
            FusionLevel::IntraThread => 0.35,
            FusionLevel::IntraWarp => 0.65,
            FusionLevel::IntraBlock => 0.90,
            FusionLevel::InterBlock => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_from_segments_collapses_degenerate_splits() {
        assert_eq!(Strategy::from_segments(0), Strategy::SingleSegment);
        assert_eq!(Strategy::from_segments(1), Strategy::SingleSegment);
        assert_eq!(
            Strategy::from_segments(4),
            Strategy::MultiSegment { segments: 4 }
        );
    }

    #[test]
    fn strategy_segments_and_combine() {
        assert_eq!(Strategy::SingleSegment.segments(), 1);
        assert!(!Strategy::SingleSegment.needs_combine_kernel());
        assert_eq!(Strategy::MultiSegment { segments: 4 }.segments(), 4);
        assert!(Strategy::MultiSegment { segments: 4 }.needs_combine_kernel());
        assert_eq!(Strategy::MultiSegment { segments: 0 }.segments(), 1);
    }

    #[test]
    fn non_incremental_is_capacity_limited() {
        let arch = GpuArch::a10();
        assert!(Mode::Incremental.fits(&arch, 1 << 20, 2, 64));
        assert!(Mode::NonIncremental.fits(&arch, 1024, 2, 64));
        assert!(!Mode::NonIncremental.fits(&arch, 1 << 20, 2, 64));
        assert_eq!(Mode::Incremental.correction_flops_per_element(2), 6);
        assert_eq!(Mode::NonIncremental.correction_flops_per_element(2), 0);
    }

    #[test]
    fn fusion_level_corrections_decrease_with_level() {
        let (len, threads, blocks) = (8192, 256, 8);
        let counts: Vec<usize> = FusionLevel::ALL
            .iter()
            .map(|l| l.correction_count(len, threads, blocks))
            .collect();
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
        assert_eq!(counts[3], 0);
    }

    #[test]
    fn intra_block_hides_the_most_latency() {
        let best = FusionLevel::ALL
            .iter()
            .max_by(|a, b| a.overlap().partial_cmp(&b.overlap()).unwrap())
            .unwrap();
        assert_eq!(*best, FusionLevel::IntraBlock);
        assert_eq!(FusionLevel::InterBlock.overlap(), 0.0);
        assert_eq!(FusionLevel::IntraWarp.name(), "intra-warp");
    }
}
