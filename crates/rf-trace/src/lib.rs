//! `rf-trace`: lightweight tracing and telemetry for the RedFuser serving
//! stack.
//!
//! The serving engine (`rf-runtime`) answers *what* it served through
//! `RuntimeMetrics`; this crate answers *where the time went*:
//!
//! * [`TraceCollector`] — a bounded, lock-minimal ring buffer of
//!   [`TraceEvent`] spans covering each request's lifecycle
//!   (`submit → queue → compile|hit → execute → deliver`) plus engine-level
//!   events (iteration boundaries with occupancy, shed decisions). Zero-cost
//!   when disabled: below [`TraceLevel::Full`] recording is a single branch.
//! * [`LogHistogram`] — HDR-style log-bucketed histograms giving
//!   lifetime-accurate p50/p99/p999 per pipeline [`Stage`], per lane and per
//!   workload class, in fixed memory.
//! * [`chrome_trace_json`] / [`TraceSnapshot::chrome_trace`] — a Chrome
//!   trace-event / Perfetto-compatible JSON exporter, with
//!   [`validate_chrome_trace`] as the matching well-formedness check used by
//!   tests and CI (the workspace is offline, so the crate carries its own
//!   minimal JSON reader, [`json::parse`]).
//! * [`OpProfiler`] — op-level aggregation of tile-VM interpreter samples
//!   per `(device, class, region, op)`, exportable as folded-stack text for
//!   `inferno`-style flamegraph tools ([`validate_folded`] checks the
//!   format).
//! * [`CalibrationLedger`] — predicted-vs-measured latency reconciliation
//!   per `(class, arch, backend)`: MAPE, relative-error percentiles and a
//!   drift flag that fires when the measured/predicted ratio leaves a
//!   configurable band.
//! * [`RollingTelemetry`] — a ring of fixed-width time windows (default
//!   250 ms × 64) tracking throughput, p99, shed rate, batch occupancy and
//!   busy fraction over time.
//!
//! The crate is dependency-free and knows nothing about the engine; the
//! runtime re-exports it as `redfuser::trace` and threads the collector
//! through its hot path.

pub mod calib;
pub mod chrome;
pub mod hist;
pub mod json;
pub mod profile;
pub mod span;
pub mod timeseries;

pub use calib::{CalibrationLedger, CalibrationSnapshot, DEFAULT_DRIFT_BAND};
pub use chrome::{chrome_trace_json, validate_chrome_trace, TraceStats};
pub use hist::{HistogramSnapshot, LogHistogram, SUB_BUCKETS};
pub use profile::{validate_folded, OpProfileEntry, OpProfileSnapshot, OpProfiler, OpSample};
pub use span::{
    ArgValue, EventPhase, TraceCollector, TraceConfig, TraceEvent, TraceLevel, TraceSnapshot,
    Track, REQUEST_TRACK_BASE,
};
pub use timeseries::{
    RollingTelemetry, TimeSeriesSnapshot, WindowSnapshot, DEFAULT_WINDOWS, DEFAULT_WINDOW_MS,
};

/// The instrumented stages of the serving pipeline, in lifecycle order.
/// Stage names double as span names in exported traces and as label values
/// in the Prometheus exposition, so a dashboard and a Perfetto timeline
/// agree on vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Submission accepted → the iteration that served it formed. Span name
    /// `"queue"`.
    Queue,
    /// Plan acquisition on a cache miss: compile + auto-tune. Span name
    /// `"compile"` (a cache hit records the `"hit"` span instead and
    /// contributes no `compile` sample).
    Compile,
    /// The auto-tuner search inside a compile (a subset of
    /// [`Stage::Compile`]'s wall time).
    Tune,
    /// Plan ready → this request's result delivered (includes its share of
    /// batch execution). Span name `"execute"`.
    Execute,
    /// Submission accepted → result delivered, end to end.
    EndToEnd,
}

/// Number of instrumented stages.
pub const STAGES: usize = 5;

impl Stage {
    /// All stages in lifecycle order — index order matches
    /// [`Stage::index`].
    pub const ALL: [Stage; STAGES] = [
        Stage::Queue,
        Stage::Compile,
        Stage::Tune,
        Stage::Execute,
        Stage::EndToEnd,
    ];

    /// The stage's dense index, for stage-indexed arrays.
    pub fn index(self) -> usize {
        match self {
            Stage::Queue => 0,
            Stage::Compile => 1,
            Stage::Tune => 2,
            Stage::Execute => 3,
            Stage::EndToEnd => 4,
        }
    }

    /// The stage's name — also the span name in exported traces.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Compile => "compile",
            Stage::Tune => "tune",
            Stage::Execute => "execute",
            Stage::EndToEnd => "e2e",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_are_dense_and_ordered() {
        for (expected, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), expected);
        }
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["queue", "compile", "tune", "execute", "e2e"]);
    }
}
