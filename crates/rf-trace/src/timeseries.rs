//! Rolling time-windowed telemetry: the bench trajectory, not just its
//! endpoints.
//!
//! A [`RollingTelemetry`] keeps a ring of fixed-width time windows (default
//! 250 ms × 64). Each completed batch, shed decision and admission lands in
//! the window that contains its wall-clock instant; windows older than the
//! ring rolls off. The snapshot derives per-window throughput, p99 simulated
//! latency, shed rate, mean batch occupancy and busy fraction — exported as
//! the `timeseries` section of `BENCH_serving.json` and as Prometheus
//! gauges for the most recent complete window.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default window width, milliseconds.
pub const DEFAULT_WINDOW_MS: u64 = 250;

/// Default number of windows the ring retains.
pub const DEFAULT_WINDOWS: usize = 64;

/// Bounded number of latency samples kept per window for the p99 estimate
/// (counters remain exact; excess samples are dropped and counted).
const WINDOW_SAMPLES: usize = 512;

#[derive(Debug, Default)]
struct Slot {
    index: u64,
    submitted: u64,
    completed: u64,
    failed: u64,
    shed: u64,
    batches: u64,
    batched_requests: u64,
    busy_us: f64,
    latencies: Vec<f64>,
    dropped_samples: u64,
}

impl Slot {
    fn new(index: u64) -> Slot {
        Slot {
            index,
            ..Slot::default()
        }
    }
}

/// A ring of fixed-width telemetry windows shared by one device's workers.
#[derive(Debug)]
pub struct RollingTelemetry {
    width_ms: u64,
    slots: usize,
    /// Streams merged into this ring (1 per device; fleet merges sum it so
    /// busy fractions stay normalised).
    streams: AtomicU64,
    epoch: Instant,
    ring: Mutex<VecDeque<Slot>>,
}

impl Default for RollingTelemetry {
    fn default() -> Self {
        RollingTelemetry::new(DEFAULT_WINDOW_MS, DEFAULT_WINDOWS)
    }
}

impl RollingTelemetry {
    /// A ring of `slots` windows, each `width_ms` wide (both clamped ≥ 1).
    pub fn new(width_ms: u64, slots: usize) -> RollingTelemetry {
        RollingTelemetry {
            width_ms: width_ms.max(1),
            slots: slots.max(1),
            streams: AtomicU64::new(1),
            epoch: Instant::now(),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Window width in milliseconds.
    pub fn width_ms(&self) -> u64 {
        self.width_ms
    }

    /// Ring capacity in windows.
    pub fn slots(&self) -> usize {
        self.slots
    }

    fn index_now(&self) -> u64 {
        (self.epoch.elapsed().as_millis() as u64) / self.width_ms
    }

    fn with_slot<R>(&self, f: impl FnOnce(&mut Slot) -> R) -> R {
        let index = self.index_now();
        let mut ring = self.ring.lock().expect("telemetry ring poisoned");
        if ring.back().is_none_or(|slot| slot.index < index) {
            ring.push_back(Slot::new(index));
        }
        while ring.len() > self.slots {
            ring.pop_front();
        }
        let slot = ring.back_mut().expect("ring holds the current slot");
        f(slot)
    }

    /// Counts one accepted submission in the current window.
    pub fn record_submit(&self) {
        self.with_slot(|slot| slot.submitted += 1);
    }

    /// Rolls back one [`RollingTelemetry::record_submit`] whose submission
    /// was rejected after counting (saturating: the submit may have landed
    /// in a window that already rotated out).
    pub fn cancel_submit(&self) {
        self.with_slot(|slot| slot.submitted = slot.submitted.saturating_sub(1));
    }

    /// Counts one shed submission in the current window.
    pub fn record_shed(&self) {
        self.with_slot(|slot| slot.shed += 1);
    }

    /// Records one executed batch in the current window: completed/failed
    /// request counts, the batch's simulated latency (one p99 sample) and
    /// its occupancy. `busy_us` accumulates into the window's busy fraction.
    pub fn record_batch(&self, completed: u64, failed: u64, latency_us: f64, batch_size: u64) {
        self.with_slot(|slot| {
            slot.completed += completed;
            slot.failed += failed;
            slot.batches += 1;
            slot.batched_requests += batch_size;
            if latency_us.is_finite() && latency_us >= 0.0 {
                slot.busy_us += latency_us;
                if slot.latencies.len() < WINDOW_SAMPLES {
                    slot.latencies.push(latency_us);
                } else {
                    slot.dropped_samples += 1;
                }
            }
        });
    }

    /// Folds another ring into this one, aligning windows by index. The two
    /// rings' epochs differ by device start-up skew (microseconds), which is
    /// far below the window width; the merged busy fraction renormalises by
    /// the summed stream count.
    pub fn merge_from(&self, other: &RollingTelemetry) {
        self.streams
            .fetch_add(other.streams.load(Ordering::Relaxed), Ordering::Relaxed);
        let theirs = other.ring.lock().expect("telemetry ring poisoned");
        let mut guard = self.ring.lock().expect("telemetry ring poisoned");
        let ours = &mut *guard;
        for slot in theirs.iter() {
            let target = match ours.iter_mut().find(|s| s.index == slot.index) {
                Some(existing) => existing,
                None => {
                    let at = ours.partition_point(|s| s.index < slot.index);
                    ours.insert(at, Slot::new(slot.index));
                    &mut ours[at]
                }
            };
            target.submitted += slot.submitted;
            target.completed += slot.completed;
            target.failed += slot.failed;
            target.shed += slot.shed;
            target.batches += slot.batches;
            target.batched_requests += slot.batched_requests;
            target.busy_us += slot.busy_us;
            let room = WINDOW_SAMPLES.saturating_sub(target.latencies.len());
            target.dropped_samples +=
                slot.dropped_samples + slot.latencies.len().saturating_sub(room) as u64;
            target
                .latencies
                .extend(slot.latencies.iter().take(room).copied());
        }
        while ours.len() > self.slots {
            ours.pop_front();
        }
    }

    /// A point-in-time per-window summary, oldest window first.
    pub fn snapshot(&self) -> TimeSeriesSnapshot {
        let ring = self.ring.lock().expect("telemetry ring poisoned");
        let width_s = self.width_ms as f64 / 1000.0;
        let busy_capacity_us =
            self.width_ms as f64 * 1000.0 * self.streams.load(Ordering::Relaxed) as f64;
        let windows = ring
            .iter()
            .map(|slot| {
                let mut sorted = slot.latencies.clone();
                sorted.sort_by(|a, b| a.total_cmp(b));
                let arrivals = slot.completed + slot.failed + slot.shed;
                WindowSnapshot {
                    start_ms: slot.index * self.width_ms,
                    submitted: slot.submitted,
                    completed: slot.completed,
                    failed: slot.failed,
                    shed: slot.shed,
                    batches: slot.batches,
                    throughput_rps: slot.completed as f64 / width_s,
                    p99_us: percentile_sorted(&sorted, 99.0),
                    shed_rate: if arrivals > 0 {
                        slot.shed as f64 / arrivals as f64
                    } else {
                        0.0
                    },
                    mean_batch: if slot.batches > 0 {
                        slot.batched_requests as f64 / slot.batches as f64
                    } else {
                        0.0
                    },
                    busy_frac: (slot.busy_us / busy_capacity_us).min(1.0),
                }
            })
            .collect();
        TimeSeriesSnapshot {
            window_ms: self.width_ms,
            windows,
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (`p` in 0..=100).
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Exportable per-window time series, oldest window first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeriesSnapshot {
    /// Window width, milliseconds.
    pub window_ms: u64,
    /// One summary per retained window.
    pub windows: Vec<WindowSnapshot>,
}

impl TimeSeriesSnapshot {
    /// True when no window recorded any traffic.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The most recent window with any completions — the scrape target for
    /// the Prometheus gauges.
    pub fn latest_active(&self) -> Option<&WindowSnapshot> {
        self.windows.iter().rev().find(|w| w.completed > 0)
    }
}

/// Derived telemetry of one time window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowSnapshot {
    /// Window start, milliseconds since the telemetry epoch.
    pub start_ms: u64,
    /// Submissions accepted in the window.
    pub submitted: u64,
    /// Requests completed in the window.
    pub completed: u64,
    /// Requests failed in the window.
    pub failed: u64,
    /// Submissions shed in the window.
    pub shed: u64,
    /// Batches executed in the window.
    pub batches: u64,
    /// Completions per second over the window width.
    pub throughput_rps: f64,
    /// p99 of the simulated batch latencies landing in the window, µs.
    pub p99_us: f64,
    /// Shed submissions over all arrivals resolved in the window.
    pub shed_rate: f64,
    /// Mean batch occupancy (requests per executed batch).
    pub mean_batch: f64,
    /// Fraction of the window the device(s) spent busy (simulated), 0..=1.
    pub busy_frac: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_land_in_the_current_window_with_derived_rates() {
        let telemetry = RollingTelemetry::new(60_000, 4);
        telemetry.record_submit();
        telemetry.record_submit();
        telemetry.record_batch(2, 0, 1000.0, 2);
        telemetry.record_shed();
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.window_ms, 60_000);
        assert_eq!(snapshot.windows.len(), 1);
        let w = &snapshot.windows[0];
        assert_eq!((w.submitted, w.completed, w.shed), (2, 2, 1));
        assert!((w.throughput_rps - 2.0 / 60.0).abs() < 1e-12);
        assert!((w.shed_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((w.mean_batch - 2.0).abs() < 1e-12);
        assert!((w.p99_us - 1000.0).abs() < 1e-12);
        assert!(w.busy_frac > 0.0);
        assert_eq!(snapshot.latest_active().unwrap().completed, 2);
    }

    #[test]
    fn merge_aligns_windows_and_renormalises_busy() {
        let a = RollingTelemetry::new(60_000, 4);
        let b = RollingTelemetry::new(60_000, 4);
        a.record_batch(1, 0, 30_000_000.0, 1);
        b.record_batch(3, 1, 30_000_000.0, 4);
        let busy_alone = a.snapshot().windows[0].busy_frac;
        a.merge_from(&b);
        let snapshot = a.snapshot();
        assert_eq!(snapshot.windows.len(), 1);
        let w = &snapshot.windows[0];
        assert_eq!((w.completed, w.failed, w.batches), (4, 1, 2));
        // Two streams, same busy time each: the merged fraction matches one
        // device's fraction instead of doubling.
        assert!((w.busy_frac - busy_alone).abs() < 1e-9);
    }

    #[test]
    fn ring_drops_the_oldest_window_beyond_capacity() {
        // 1 ms windows: force distinct indices by spinning past boundaries.
        let telemetry = RollingTelemetry::new(1, 2);
        let mut seen = std::collections::BTreeSet::new();
        let start = Instant::now();
        while seen.len() < 4 && start.elapsed().as_millis() < 500 {
            telemetry.record_batch(1, 0, 1.0, 1);
            seen.insert(telemetry.index_now());
        }
        assert!(telemetry.snapshot().windows.len() <= 2);
    }

    #[test]
    fn non_finite_latencies_keep_counters_but_add_no_samples() {
        let telemetry = RollingTelemetry::new(60_000, 4);
        telemetry.record_batch(1, 0, f64::NAN, 1);
        let w = telemetry.snapshot().windows[0];
        assert_eq!(w.completed, 1);
        assert_eq!(w.p99_us, 0.0);
        assert_eq!(w.busy_frac, 0.0);
    }
}
