//! Op-level profile aggregation for the tile-VM interpreter.
//!
//! The `rf_tile::exec` VM reports, per executed program, one [`OpSample`]
//! for each op kind of the store → correct → reduce template (invocation
//! counts, rows processed, modelled byte traffic and measured wall time).
//! The runtime attributes every sample to the `(device, workload class,
//! region, op)` it ran under and folds it into an [`OpProfiler`] — a small
//! concurrent aggregation map shared by all workers of a fleet.
//!
//! The aggregate exports as **folded-stack text** (one
//! `device;class;region;op <weight>` line per aggregate, weighted by wall
//! nanoseconds), the input format of `inferno`-style flamegraph tools.
//! [`validate_folded`] is the matching well-formedness check used by tests
//! and CI.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Aggregatable counters of one op kind within one program execution.
///
/// Invocations and byte counts are the deterministic loop-structure counts of
/// the tile template (they depend only on shapes and tuning, not on data);
/// `wall_ns` is measured host wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpSample {
    /// Times the op ran (e.g. one per main-loop tile per row).
    pub invocations: u64,
    /// Output rows the op contributed to.
    pub rows: u64,
    /// Modelled bytes read by the op.
    pub bytes_read: u64,
    /// Modelled bytes written by the op.
    pub bytes_written: u64,
    /// Measured wall time attributed to the op, in nanoseconds.
    pub wall_ns: u64,
}

impl OpSample {
    fn add(&mut self, other: &OpSample) {
        self.invocations += other.invocations;
        self.rows += other.rows;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.wall_ns += other.wall_ns;
    }
}

type ProfKey = (usize, String, String, &'static str);

/// Concurrent per-fleet aggregation of tile-VM op samples, keyed by
/// `(device, workload class, region, op)`.
///
/// Construction fixes whether the profiler is live: a disabled profiler
/// never takes its lock and the engine's serving path never produces samples
/// for it, so the interpreter stays untouched (the `TraceConfig` gate the
/// acceptance tests pin down).
#[derive(Debug)]
pub struct OpProfiler {
    enabled: bool,
    entries: Mutex<BTreeMap<ProfKey, OpSample>>,
}

impl OpProfiler {
    /// Creates a profiler; `enabled = false` makes every record a no-op.
    pub fn new(enabled: bool) -> OpProfiler {
        OpProfiler {
            enabled,
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether callers should produce samples for this profiler.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Folds one op sample into the `(device, class, region, op)` aggregate.
    pub fn record(
        &self,
        device: usize,
        class: &str,
        region: &str,
        op: &'static str,
        sample: &OpSample,
    ) {
        if !self.enabled {
            return;
        }
        let mut entries = self.entries.lock().expect("op profiler poisoned");
        entries
            .entry((device, class.to_string(), region.to_string(), op))
            .or_default()
            .add(sample);
    }

    /// A point-in-time copy of every aggregate, sorted by key.
    pub fn snapshot(&self) -> OpProfileSnapshot {
        let entries = self.entries.lock().expect("op profiler poisoned");
        OpProfileSnapshot {
            entries: entries
                .iter()
                .map(|((device, class, region, op), sample)| OpProfileEntry {
                    device: *device,
                    class: class.clone(),
                    region: region.clone(),
                    op: op.to_string(),
                    counters: *sample,
                })
                .collect(),
        }
    }
}

/// One `(device, class, region, op)` aggregate in an [`OpProfileSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfileEntry {
    /// Fleet device id the samples ran on.
    pub device: usize,
    /// Workload class served (e.g. `softmax`, `mha`, `graph`).
    pub class: String,
    /// Region: the compiled plan (tile program) name.
    pub region: String,
    /// Op kind within the tile template (`reduce`, `correct`, …).
    pub op: String,
    /// Summed counters.
    pub counters: OpSample,
}

/// Exportable aggregate of a profiling run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpProfileSnapshot {
    /// Aggregates sorted by `(device, class, region, op)`.
    pub entries: Vec<OpProfileEntry>,
}

impl OpProfileSnapshot {
    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Folded-stack export: one `device-N;class;region;op <wall_ns>` line per
    /// aggregate, the input of `inferno-flamegraph` and friends. Frames never
    /// contain `;` or whitespace (offending characters are replaced by `_`),
    /// and the weight is the aggregate's measured wall nanoseconds (clamped
    /// to ≥ 1 so an op that ran is never invisible in the flamegraph).
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            out.push_str(&format!(
                "device-{};{};{};{} {}\n",
                entry.device,
                frame(&entry.class),
                frame(&entry.region),
                frame(&entry.op),
                entry.counters.wall_ns.max(1),
            ));
        }
        out
    }
}

/// Sanitises one folded-stack frame: `;` and whitespace become `_`.
fn frame(text: &str) -> String {
    text.chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

/// Validates folded-stack text: every non-empty line must be
/// `frame(;frame)* <u64 weight>` with non-empty, whitespace-free frames.
/// Returns the number of stack lines.
///
/// # Errors
///
/// A human-readable description of the first malformed line.
pub fn validate_folded(text: &str) -> Result<usize, String> {
    let mut stacks = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let (stack, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no weight separator: {line:?}", lineno + 1))?;
        weight
            .parse::<u64>()
            .map_err(|_| format!("line {}: weight {weight:?} is not a u64", lineno + 1))?;
        if stack.is_empty() {
            return Err(format!("line {}: empty stack", lineno + 1));
        }
        for part in stack.split(';') {
            if part.is_empty() {
                return Err(format!("line {}: empty frame in {stack:?}", lineno + 1));
            }
            if part.chars().any(char::is_whitespace) {
                return Err(format!("line {}: whitespace in frame {part:?}", lineno + 1));
            }
        }
        stacks += 1;
    }
    Ok(stacks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(invocations: u64, wall_ns: u64) -> OpSample {
        OpSample {
            invocations,
            rows: invocations,
            bytes_read: invocations * 8,
            bytes_written: invocations * 8,
            wall_ns,
        }
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let profiler = OpProfiler::new(false);
        profiler.record(0, "softmax", "softmax_4x64", "reduce", &sample(4, 100));
        assert!(!profiler.enabled());
        assert!(profiler.snapshot().is_empty());
        assert_eq!(profiler.snapshot().folded(), "");
    }

    #[test]
    fn samples_aggregate_by_device_class_region_and_op() {
        let profiler = OpProfiler::new(true);
        profiler.record(0, "softmax", "softmax_4x64", "reduce", &sample(4, 100));
        profiler.record(0, "softmax", "softmax_4x64", "reduce", &sample(2, 50));
        profiler.record(1, "softmax", "softmax_4x64", "reduce", &sample(1, 10));
        let snapshot = profiler.snapshot();
        assert_eq!(snapshot.entries.len(), 2);
        assert_eq!(snapshot.entries[0].counters.invocations, 6);
        assert_eq!(snapshot.entries[0].counters.wall_ns, 150);
        assert_eq!(snapshot.entries[1].device, 1);
    }

    #[test]
    fn folded_export_validates_and_sanitises_frames() {
        let profiler = OpProfiler::new(true);
        profiler.record(0, "quant gemm", "q;prog", "reduce", &sample(3, 900));
        profiler.record(0, "quant gemm", "q;prog", "epilogue", &sample(1, 0));
        let folded = profiler.snapshot().folded();
        assert_eq!(validate_folded(&folded), Ok(2));
        assert!(folded.contains("device-0;quant_gemm;q_prog;reduce 900"));
        // Zero wall time still produces a visible weight.
        assert!(folded.contains("device-0;quant_gemm;q_prog;epilogue 1"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_folded("no-weight").is_err());
        assert!(validate_folded("a;b notanum").is_err());
        assert!(validate_folded("a;;b 5").is_err());
        assert!(validate_folded(" 5").is_err());
        assert_eq!(validate_folded("a;b 5\n\nc 1\n"), Ok(2));
    }
}
