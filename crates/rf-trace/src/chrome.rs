//! Chrome trace-event / Perfetto export and validation.
//!
//! [`chrome_trace_json`] renders a [`TraceSnapshot`] in the Chrome
//! trace-event JSON object format (`{"traceEvents": [...]}`) — loadable in
//! Perfetto (`ui.perfetto.dev`) and `chrome://tracing`. Spans become `"X"`
//! (complete) events, instants become `"i"` events, and every distinct track
//! gets a `thread_name` metadata record so the viewer labels request and
//! worker timelines.
//!
//! [`validate_chrome_trace`] is the inverse check used by tests, the
//! `serve_trace` harness and CI: parse the JSON (own mini-parser — the
//! workspace is offline, no serde), require a non-empty `traceEvents` array,
//! sane timestamps, and that spans sharing a track nest properly instead of
//! partially overlapping.

use std::collections::HashMap;

use crate::json::{self, JsonValue};
use crate::span::{ArgValue, EventPhase, TraceEvent, TraceSnapshot, Track};

/// Renders a snapshot as Chrome trace-event JSON. Timestamps and durations
/// are exported in microseconds, as the format specifies.
pub fn chrome_trace_json(snapshot: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(snapshot.events.len() * 128 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":");
    out.push_str(&json::number(snapshot.dropped as f64));
    out.push_str("},\"traceEvents\":[");
    let mut first = true;
    let mut emit = |text: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&text);
    };
    for (pid, label) in process_labels(&snapshot.events) {
        emit(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json::escape(&label)
            ),
            &mut first,
        );
    }
    for ((pid, track), label) in track_labels(&snapshot.events) {
        emit(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{track},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json::escape(&label)
            ),
            &mut first,
        );
    }
    for event in &snapshot.events {
        emit(event_json(event), &mut first);
    }
    out.push_str("]}");
    out
}

/// One label per distinct process (`pid`), in first-appearance order:
/// `"engine"` for the shared process, `"device-N"` per fleet device.
fn process_labels(events: &[TraceEvent]) -> Vec<(u64, String)> {
    let mut seen: Vec<(u64, String)> = Vec::new();
    for event in events {
        let pid = event.process_id();
        if seen.iter().any(|(p, _)| *p == pid) {
            continue;
        }
        let label = match event.device {
            Some(device) => format!("device-{device}"),
            None => "engine".to_string(),
        };
        seen.push((pid, label));
    }
    seen
}

/// One label per distinct `(pid, tid)` track, in first-appearance order.
/// Tids are only unique within a process: a fleet reuses `worker-0` on every
/// device pid, so the key must carry both halves.
fn track_labels(events: &[TraceEvent]) -> Vec<((u64, u64), String)> {
    let mut seen = Vec::new();
    for event in events {
        let key = (event.process_id(), event.track_id());
        if seen.iter().any(|(k, _)| *k == key) {
            continue;
        }
        let label = match event.track {
            Track::FrontDoor => "front-door".to_string(),
            Track::Worker(i) => format!("worker-{i}"),
            Track::Request(id) => format!("request-{id}"),
        };
        seen.push((key, label));
    }
    seen
}

fn event_json(event: &TraceEvent) -> String {
    let mut args = Vec::new();
    if let Some(id) = event.request {
        args.push(format!("\"request\":{id}"));
    }
    if let Some(lane) = event.lane {
        args.push(format!("\"lane\":\"{lane}\""));
    }
    if let Some(class) = event.class {
        args.push(format!("\"class\":\"{}\"", json::escape(class)));
    }
    if let Some(iteration) = event.iteration {
        args.push(format!("\"iteration\":{iteration}"));
    }
    if let Some(device) = event.device {
        args.push(format!("\"device\":{device}"));
    }
    for (key, value) in &event.args {
        let rendered = match value {
            ArgValue::U64(n) => n.to_string(),
            ArgValue::F64(f) => json::number(*f),
            ArgValue::Text(s) => format!("\"{}\"", json::escape(s)),
        };
        args.push(format!("\"{}\":{rendered}", json::escape(key)));
    }
    let phase = match event.phase {
        // "i" instants carry a scope; "t" (thread) keeps them on their track.
        EventPhase::Instant => "\"ph\":\"i\",\"s\":\"t\"".to_string(),
        EventPhase::Span => format!("\"ph\":\"X\",\"dur\":{}", json::number(event.dur_us)),
    };
    format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",{phase},\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
        json::escape(event.name),
        match event.track {
            Track::Request(_) => "request",
            Track::Worker(_) => "engine",
            Track::FrontDoor => "admission",
        },
        json::number(event.ts_us),
        event.process_id(),
        event.track_id(),
        args.join(",")
    )
}

/// Summary counters returned by a successful [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Total events in `traceEvents` (metadata included).
    pub events: usize,
    /// `"X"` complete spans.
    pub spans: usize,
    /// `"i"` instants.
    pub instants: usize,
    /// Distinct request tracks observed.
    pub request_tracks: usize,
}

/// Checks that `text` is a well-formed Chrome trace export: it parses as
/// JSON, `traceEvents` is a non-empty array, every span has finite
/// non-negative `ts`/`dur`, and spans sharing a track nest (any two are
/// disjoint or one contains the other — a partial overlap would render as a
/// corrupt timeline).
///
/// # Errors
///
/// A description of the first violation.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let doc = json::parse(text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .ok_or("trace has no `traceEvents` field")?
        .as_array()
        .ok_or("`traceEvents` is not an array")?;
    if events.is_empty() {
        return Err("`traceEvents` is empty".into());
    }
    let mut stats = TraceStats {
        events: events.len(),
        ..TraceStats::default()
    };
    // Tracks are only unique within a process (a fleet reuses worker tids on
    // every device pid), so the nesting key must be the (pid, tid) pair.
    type TrackKey = (u64, u64);
    let mut spans_by_track: HashMap<TrackKey, Vec<(f64, f64, String)>> = HashMap::new();
    let mut request_tracks: Vec<TrackKey> = Vec::new();
    for (index, event) in events.iter().enumerate() {
        let phase = event
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {index} has no `ph`"))?;
        let name = event
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or("<unnamed>")
            .to_string();
        let pid = event.get("pid").and_then(JsonValue::as_f64).unwrap_or(1.0) as u64;
        let tid = event.get("tid").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
        match phase {
            "M" => {}
            "i" | "I" => {
                stats.instants += 1;
                let ts = event
                    .get("ts")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("instant `{name}` has no numeric `ts`"))?;
                if !ts.is_finite() || ts < 0.0 {
                    return Err(format!("instant `{name}` has bad ts {ts}"));
                }
            }
            "X" => {
                stats.spans += 1;
                let ts = event
                    .get("ts")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("span `{name}` has no numeric `ts`"))?;
                let dur = event
                    .get("dur")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("span `{name}` has no numeric `dur`"))?;
                if !ts.is_finite() || ts < 0.0 || !dur.is_finite() || dur < 0.0 {
                    return Err(format!("span `{name}` has bad ts/dur ({ts}, {dur})"));
                }
                if event.get("cat").and_then(JsonValue::as_str) == Some("request")
                    && !request_tracks.contains(&(pid, tid))
                {
                    request_tracks.push((pid, tid));
                }
                spans_by_track
                    .entry((pid, tid))
                    .or_default()
                    .push((ts, dur, name));
            }
            other => return Err(format!("event {index} has unknown phase `{other}`")),
        }
    }
    if stats.spans == 0 {
        return Err("trace contains no spans".into());
    }
    stats.request_tracks = request_tracks.len();
    // Nesting check: per track, sort by (start, -duration); each span must
    // either start after every open ancestor ends, or end within the
    // innermost open one. A small epsilon forgives f64 rendering jitter.
    const EPS: f64 = 0.01;
    for ((pid, tid), mut spans) in spans_by_track {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)));
        let mut open: Vec<(f64, f64, String)> = Vec::new();
        for (ts, dur, name) in spans {
            while let Some(last) = open.last() {
                if ts >= last.0 + last.1 - EPS {
                    open.pop();
                } else {
                    break;
                }
            }
            if let Some((ots, odur, oname)) = open.last() {
                if ts + dur > ots + odur + EPS {
                    return Err(format!(
                        "track {pid}/{tid}: span `{name}` [{ts}, {}] partially overlaps \
                         `{oname}` [{ots}, {}]",
                        ts + dur,
                        ots + odur
                    ));
                }
            }
            open.push((ts, dur, name));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{TraceCollector, TraceConfig};

    fn sample_snapshot() -> TraceSnapshot {
        let c = TraceCollector::new(TraceConfig::full());
        c.record(
            TraceEvent::span("queue", 0.0, 10.0, Track::Request(1))
                .with_request(1)
                .with_lane("normal"),
        );
        c.record(
            TraceEvent::span("compile", 10.0, 5.0, Track::Request(1))
                .with_request(1)
                .with_class("softmax"),
        );
        c.record(
            TraceEvent::span("execute", 15.0, 3.0, Track::Request(1))
                .with_request(1)
                .with_iteration(2),
        );
        c.record(TraceEvent::instant("deliver", 18.0, Track::Request(1)).with_request(1));
        c.record(
            TraceEvent::span("iteration", 10.0, 8.0, Track::Worker(0))
                .with_iteration(2)
                .with_arg("occupancy", ArgValue::U64(4))
                .with_arg("utilisation", ArgValue::F64(0.25)),
        );
        c.record(
            TraceEvent::instant("shed", 4.0, Track::FrontDoor)
                .with_arg("in_flight", ArgValue::U64(64))
                .with_arg("budget", ArgValue::U64(64)),
        );
        c.snapshot()
    }

    #[test]
    fn export_validates_round_trip() {
        let json_text = chrome_trace_json(&sample_snapshot());
        let stats = validate_chrome_trace(&json_text).expect("export must validate");
        assert_eq!(stats.spans, 4);
        assert_eq!(stats.instants, 2);
        assert_eq!(stats.request_tracks, 1);
        // The document parses as standard JSON and carries the tracks.
        let doc = json::parse(&json_text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(events.len() >= 6 + 3, "payload plus thread_name metadata");
        assert_eq!(
            doc.get("otherData").unwrap().get("dropped_events"),
            Some(&JsonValue::Number(0.0))
        );
    }

    #[test]
    fn validation_rejects_garbage_and_empties() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        // Instants alone are not a usable trace.
        let only_instant =
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":1}]}";
        assert!(validate_chrome_trace(only_instant)
            .unwrap_err()
            .contains("no spans"));
    }

    #[test]
    fn validation_rejects_partially_overlapping_spans() {
        // [0, 10] and [5, 15] on one track: neither contains the other.
        let bad = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"dur\":10,\"pid\":1,\"tid\":7},\
            {\"name\":\"b\",\"ph\":\"X\",\"ts\":5,\"dur\":10,\"pid\":1,\"tid\":7}]}";
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("partially overlaps"), "got: {err}");
        // The same pair on different tracks is fine.
        let ok = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"dur\":10,\"pid\":1,\"tid\":7},\
            {\"name\":\"b\",\"ph\":\"X\",\"ts\":5,\"dur\":10,\"pid\":1,\"tid\":8}]}";
        assert!(validate_chrome_trace(ok).is_ok());
        // Proper nesting on one track is fine too.
        let nested = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"dur\":10,\"pid\":1,\"tid\":7},\
            {\"name\":\"b\",\"ph\":\"X\",\"ts\":2,\"dur\":4,\"pid\":1,\"tid\":7}]}";
        assert!(validate_chrome_trace(nested).is_ok());
    }

    #[test]
    fn device_events_export_under_their_own_process() {
        let c = TraceCollector::new(TraceConfig::full());
        // Identical tid and overlapping time ranges on two devices: only the
        // (pid, tid) keying keeps these from "partially overlapping".
        c.record(TraceEvent::span("iteration", 0.0, 10.0, Track::Worker(0)).with_device(0));
        c.record(TraceEvent::span("iteration", 5.0, 10.0, Track::Worker(0)).with_device(1));
        let json_text = chrome_trace_json(&c.snapshot());
        let stats = validate_chrome_trace(&json_text).expect("per-device pids keep tracks apart");
        assert_eq!(stats.spans, 2);
        assert!(json_text.contains("\"pid\":2") && json_text.contains("\"pid\":3"));
        assert!(json_text.contains("device-0") && json_text.contains("device-1"));
        assert!(json_text.contains("\"device\":1"));
        // The same overlapping pair on ONE device is still rejected.
        let c = TraceCollector::new(TraceConfig::full());
        c.record(TraceEvent::span("iteration", 0.0, 10.0, Track::Worker(0)).with_device(1));
        c.record(TraceEvent::span("iteration", 5.0, 10.0, Track::Worker(0)).with_device(1));
        let err = validate_chrome_trace(&chrome_trace_json(&c.snapshot())).unwrap_err();
        assert!(err.contains("partially overlaps"), "got: {err}");
    }

    #[test]
    fn validation_rejects_negative_and_nonfinite_times() {
        let bad = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"X\",\"ts\":-1,\"dur\":10,\"pid\":1,\"tid\":7}]}";
        assert!(validate_chrome_trace(bad).is_err());
        let bad = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"X\",\"ts\":1,\"pid\":1,\"tid\":7}]}";
        assert!(validate_chrome_trace(bad).unwrap_err().contains("dur"));
    }
}
