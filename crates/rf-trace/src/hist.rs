//! HDR-style log-bucketed latency histograms.
//!
//! A [`LogHistogram`] records `f64` microsecond values into geometric
//! buckets — each power-of-two octave of nanoseconds is split into
//! [`SUB_BUCKETS`] linear sub-buckets — so any quantile is recoverable with
//! bounded relative error (at most `1 / SUB_BUCKETS`, ~6%) over the full
//! lifetime of the process, using a fixed 8 KiB of atomics per histogram.
//! This complements the engine's bounded sliding windows: the window answers
//! "what is latency *recently*", the histogram answers "what was p999 over
//! the whole run" without keeping every sample.
//!
//! Recording is one atomic increment plus a handful of atomic max/add
//! updates — no locks, safe from any worker thread.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave. 16 sub-buckets bound the
/// relative quantile error at 1/16 ≈ 6%.
pub const SUB_BUCKETS: usize = 16;

const SUB_SHIFT: u32 = 4; // log2(SUB_BUCKETS)
const OCTAVES: usize = 64;
const BUCKETS: usize = OCTAVES * SUB_BUCKETS;

/// A lock-free histogram of microsecond latencies with geometric buckets.
///
/// Values are quantised to nanoseconds internally; anything non-finite or
/// negative is ignored (the metrics path must never panic or skew on a
/// pathological sample).
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum in nanoseconds, for the lifetime mean.
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// Bucket index of a nanosecond value: octave = position of the highest set
/// bit, sub-bucket = the next `SUB_SHIFT` bits below it.
fn bucket_index(v_ns: u64) -> usize {
    if v_ns < SUB_BUCKETS as u64 {
        // Values below one full octave of sub-buckets are exact.
        return v_ns as usize;
    }
    let msb = 63 - v_ns.leading_zeros();
    let sub = ((v_ns >> (msb - SUB_SHIFT)) & (SUB_BUCKETS as u64 - 1)) as usize;
    (msb as usize) * SUB_BUCKETS + sub
}

/// Midpoint (in nanoseconds) of the bucket at `index` — the representative
/// value reported for samples that landed in it.
fn bucket_mid_ns(index: usize) -> f64 {
    if index < SUB_BUCKETS {
        return index as f64;
    }
    let msb = (index / SUB_BUCKETS) as u32;
    let sub = (index % SUB_BUCKETS) as u64;
    let width = 1u64 << (msb - SUB_SHIFT);
    let lo = (SUB_BUCKETS as u64 + sub) * width;
    lo as f64 + width as f64 / 2.0
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one microsecond value. Non-finite or negative values are
    /// ignored.
    pub fn record_us(&self, value_us: f64) {
        if !value_us.is_finite() || value_us < 0.0 {
            return;
        }
        let v_ns = (value_us * 1000.0).round().min(u64::MAX as f64) as u64;
        self.buckets[bucket_index(v_ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(v_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(v_ns, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Adds every sample of `other` into `self` — used to fold per-device
    /// histograms into one fleet-wide distribution. Bucket counts, the sample
    /// count, the nanosecond sum and the maximum all combine exactly (the
    /// buckets are position-aligned, so no re-quantisation happens);
    /// concurrent recording on either side yields an approximately consistent
    /// merge, the same guarantee as [`LogHistogram::snapshot`].
    pub fn merge_from(&self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_ns
            .fetch_max(other.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time summary: count, mean and the headline quantiles.
    /// Concurrent recording is fine; the snapshot is approximately
    /// consistent (bucket loads are not a single atomic cut).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let sum_ns = self.sum_ns.load(Ordering::Relaxed);
        let max_ns = self.max_ns.load(Ordering::Relaxed);
        let quantile = |q: f64| -> f64 {
            if total == 0 {
                return 0.0;
            }
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (index, &n) in counts.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_mid_ns(index) / 1000.0;
                }
            }
            max_ns as f64 / 1000.0
        };
        HistogramSnapshot {
            count: total,
            mean_us: if total == 0 {
                0.0
            } else {
                sum_ns as f64 / total as f64 / 1000.0
            },
            p50_us: quantile(0.50),
            p99_us: quantile(0.99),
            p999_us: quantile(0.999),
            max_us: max_ns as f64 / 1000.0,
        }
    }
}

/// A point-in-time summary of one [`LogHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Lifetime mean, in microseconds.
    pub mean_us: f64,
    /// Median, in microseconds (bucket-quantised, ≤ ~6% relative error).
    pub p50_us: f64,
    /// 99th percentile, in microseconds.
    pub p99_us: f64,
    /// 99.9th percentile, in microseconds.
    pub p999_us: f64,
    /// Largest sample, in microseconds (exact).
    pub max_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LogHistogram::new();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50_us, 0.0);
        assert_eq!(snap.p999_us, 0.0);
        assert_eq!(snap.mean_us, 0.0);
    }

    #[test]
    fn quantiles_are_within_bucket_error() {
        let h = LogHistogram::new();
        // 1..=1000 µs uniformly: p50 ≈ 500, p99 ≈ 990.
        for v in 1..=1000 {
            h.record_us(v as f64);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert!(
            (snap.p50_us - 500.0).abs() / 500.0 < 0.08,
            "p50 {} too far from 500",
            snap.p50_us
        );
        assert!(
            (snap.p99_us - 990.0).abs() / 990.0 < 0.08,
            "p99 {} too far from 990",
            snap.p99_us
        );
        assert!(snap.p999_us >= snap.p99_us && snap.p99_us >= snap.p50_us);
        assert!((snap.mean_us - 500.5).abs() < 1.0);
        assert!((snap.max_us - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn huge_dynamic_range_is_handled() {
        let h = LogHistogram::new();
        h.record_us(0.001); // 1 ns
        h.record_us(1.0);
        h.record_us(1e9); // 1000 s
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert!((snap.max_us - 1e9).abs() < 1.0);
        assert!((snap.p50_us - 1.0).abs() / 1.0 < 0.1);
    }

    #[test]
    fn pathological_samples_are_ignored() {
        let h = LogHistogram::new();
        h.record_us(f64::NAN);
        h.record_us(f64::INFINITY);
        h.record_us(-5.0);
        assert_eq!(h.count(), 0);
        h.record_us(10.0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!((snap.p50_us - 10.0).abs() / 10.0 < 0.07);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(LogHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.record_us((t * 1000 + i) as f64 / 7.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().count, 4000);
    }

    #[test]
    fn merging_is_exact_at_the_bucket_level() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let whole = LogHistogram::new();
        for v in 1..=500 {
            a.record_us(v as f64);
            whole.record_us(v as f64);
        }
        for v in 501..=1000 {
            b.record_us(v as f64);
            whole.record_us(v as f64);
        }
        let merged = LogHistogram::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        // Merging position-aligned buckets is lossless: the merged snapshot
        // is identical to recording every sample into one histogram.
        assert_eq!(merged.snapshot(), whole.snapshot());
        assert_eq!(merged.count(), 1000);
        // Merging an empty histogram changes nothing.
        let before = merged.snapshot();
        merged.merge_from(&LogHistogram::new());
        assert_eq!(merged.snapshot(), before);
    }

    mod percentile_bound {
        use super::super::*;
        use proptest::prelude::*;

        /// The exact percentile under the histogram's own rank rule:
        /// `rank = ceil(q·n)` clamped to `1..=n`, value = the rank-th
        /// smallest sample.
        fn exact_percentile(sorted: &[f64], q: f64) -> f64 {
            let total = sorted.len() as f64;
            let rank = ((q * total).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        }

        /// Adversarial sample distributions: sub-bucket-resolution values,
        /// huge values, log-uniform spreads across many octaves, tight
        /// clusters with far outliers, and constants.
        fn samples() -> impl Strategy<Value = Vec<f64>> {
            let tiny = prop::collection::vec(0.0f64..0.05, 1..200);
            let large = prop::collection::vec(1e3f64..1e7, 1..200);
            let log_uniform =
                prop::collection::vec((0u32..40, 1.0f64..2.0), 1..200).prop_map(|pairs| {
                    pairs
                        .into_iter()
                        .map(|(octave, jitter)| 2f64.powi(octave as i32) * jitter / 1000.0)
                        .collect()
                });
            let clustered = (1.0f64..100.0, prop::collection::vec(0.9f64..1.1, 1..100)).prop_map(
                |(center, factors)| {
                    let mut v: Vec<f64> = factors.iter().map(|f| center * f).collect();
                    v.push(center * 1e6); // one far outlier
                    v
                },
            );
            let constant = (0.0f64..1e6, 1usize..100).prop_map(|(value, n)| vec![value; n]);
            prop_oneof![tiny, large, log_uniform, clustered, constant]
        }

        proptest! {
            /// Every exposed quantile is within one bucket's relative width
            /// (`1/SUB_BUCKETS`) of the exact sorted-sample percentile, plus
            /// the nanosecond quantisation slack.
            #[test]
            fn quantile_error_is_bounded_by_one_bucket_width(values in samples()) {
                let h = LogHistogram::new();
                for &v in &values {
                    h.record_us(v);
                }
                let mut sorted = values.clone();
                sorted.sort_by(|a, b| a.total_cmp(b));
                let snap = h.snapshot();
                for (estimate, q) in [
                    (snap.p50_us, 0.50),
                    (snap.p99_us, 0.99),
                    (snap.p999_us, 0.999),
                ] {
                    let exact = exact_percentile(&sorted, q);
                    let tolerance = exact / SUB_BUCKETS as f64 + 0.002;
                    prop_assert!(
                        (estimate - exact).abs() <= tolerance,
                        "q={q}: estimate {estimate} vs exact {exact} (tolerance {tolerance})"
                    );
                }
            }
        }
    }

    #[test]
    fn bucket_index_is_monotonic_and_mid_is_inside() {
        let mut last = 0usize;
        for exp in 0..60u32 {
            for v in [1u64 << exp, (1u64 << exp) + (1u64 << exp) / 3] {
                let idx = bucket_index(v);
                assert!(idx >= last, "index must not decrease");
                last = idx;
                let mid = bucket_mid_ns(idx);
                // The representative must be within one bucket width.
                assert!(
                    (mid - v as f64).abs() / (v as f64) < 0.07,
                    "mid {mid} too far from {v}"
                );
            }
        }
    }
}
