//! A minimal JSON reader used to validate exported traces.
//!
//! The workspace is offline (no serde), so trace validation carries its own
//! recursive-descent parser. It accepts standard JSON (RFC 8259) minus
//! nothing we emit: objects, arrays, strings with escapes, numbers, bools,
//! null. It exists to *check* well-formedness, not to be fast.

use std::collections::HashMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as `f64`.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Duplicate keys keep the last value.
    Object(HashMap<String, JsonValue>),
}

impl JsonValue {
    /// The object's field `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document (surrounding whitespace allowed).
///
/// # Errors
///
/// A human-readable description with the byte offset of the first error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::String),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected `{literal}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid utf8 in number")?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "invalid \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        // Surrogates degrade to the replacement character —
                        // good enough for validation.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 scalar starting here.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf8")?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '{'
    let mut map = HashMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

/// Escapes `text` as the contents of a JSON string literal (no quotes).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number (finite values only; non-finite degrade
/// to `0`, which JSON cannot represent otherwise).
pub fn number(value: f64) -> String {
    if !value.is_finite() {
        return "0".into();
    }
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#;
        let value = parse(doc).unwrap();
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            value.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            value.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(value.get("b").unwrap().get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "[1] x"] {
            assert!(parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let value = parse(&doc).unwrap();
        assert_eq!(value.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn number_formatting_is_json_safe() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(3.25), "3.25");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
        assert!(parse(&number(1.0e-7)).is_ok());
    }
}
