//! Cost-model calibration ledger: predicted vs. measured latency, reconciled.
//!
//! The serving engine routes and accounts by `ExecBackend::estimate_us` —
//! the cost model's *predicted* latency — while the tile-VM's *measured*
//! wall time goes unchecked. The [`CalibrationLedger`] closes that loop:
//! every executed batch records the pair `(predicted µs, measured µs)` under
//! `(workload class, arch, arch fingerprint, backend)`, and the snapshot
//! surfaces MAPE plus p50/p95 relative error so estimate drift is auditable
//! per class and architecture.
//!
//! A **drift flag** raises when the measured/predicted ratio leaves a
//! configurable band (default [`DEFAULT_DRIFT_BAND`]): the cost model is
//! simulating a GPU while the VM runs on a host CPU, so the interesting
//! signal is the ratio *moving*, not its absolute value.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Default measured/predicted ratio band outside which an entry is flagged
/// as drifting. Wide on purpose: predicted latency simulates the target GPU
/// while measured latency is host CPU interpretation, so only large shifts
/// are meaningful.
pub const DEFAULT_DRIFT_BAND: (f64, f64) = (0.02, 50.0);

/// Bounded number of recent relative-error samples kept per entry for the
/// p50/p95 estimates (MAPE and the mean ratio use lifetime sums).
const REL_ERR_WINDOW: usize = 2048;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct CalibKey {
    class: String,
    arch: String,
    backend: String,
    fingerprint: u64,
}

#[derive(Debug, Default)]
struct CalibTrack {
    samples: u64,
    predicted_sum: f64,
    measured_sum: f64,
    abs_pct_err_sum: f64,
    ratio_sum: f64,
    rel_errs: Vec<f64>,
    last_ratio: f64,
    drift_count: u64,
}

impl CalibTrack {
    fn record(&mut self, predicted_us: f64, measured_us: f64, band: (f64, f64)) {
        let ratio = measured_us / predicted_us;
        let rel_err = (measured_us - predicted_us).abs() / predicted_us;
        self.samples += 1;
        self.predicted_sum += predicted_us;
        self.measured_sum += measured_us;
        self.abs_pct_err_sum += rel_err * 100.0;
        self.ratio_sum += ratio;
        if self.rel_errs.len() < REL_ERR_WINDOW {
            self.rel_errs.push(rel_err);
        }
        self.last_ratio = ratio;
        if ratio < band.0 || ratio > band.1 {
            self.drift_count += 1;
        }
    }

    fn merge_from(&mut self, other: &CalibTrack) {
        self.samples += other.samples;
        self.predicted_sum += other.predicted_sum;
        self.measured_sum += other.measured_sum;
        self.abs_pct_err_sum += other.abs_pct_err_sum;
        self.ratio_sum += other.ratio_sum;
        let room = REL_ERR_WINDOW.saturating_sub(self.rel_errs.len());
        self.rel_errs
            .extend(other.rel_errs.iter().take(room).copied());
        if other.samples > 0 {
            self.last_ratio = other.last_ratio;
        }
        self.drift_count += other.drift_count;
    }
}

/// Concurrent predicted-vs-measured latency ledger, keyed by
/// `(workload class, arch, arch fingerprint, backend)`.
#[derive(Debug)]
pub struct CalibrationLedger {
    band: (f64, f64),
    entries: Mutex<BTreeMap<CalibKey, CalibTrack>>,
}

impl Default for CalibrationLedger {
    fn default() -> CalibrationLedger {
        CalibrationLedger::new()
    }
}

impl CalibrationLedger {
    /// A ledger with the default drift band.
    pub fn new() -> CalibrationLedger {
        CalibrationLedger::with_band(DEFAULT_DRIFT_BAND.0, DEFAULT_DRIFT_BAND.1)
    }

    /// A ledger flagging drift when measured/predicted leaves `[lo, hi]`.
    /// An inverted or non-positive band falls back to the default.
    pub fn with_band(lo: f64, hi: f64) -> CalibrationLedger {
        let band = if lo > 0.0 && hi > lo {
            (lo, hi)
        } else {
            DEFAULT_DRIFT_BAND
        };
        CalibrationLedger {
            band,
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// The configured drift band.
    pub fn band(&self) -> (f64, f64) {
        self.band
    }

    /// Records one executed batch: the cost model's predicted latency and
    /// the measured wall time, both in microseconds. Non-finite or
    /// non-positive pairs are discarded (a prediction of zero cannot be
    /// expressed as a ratio).
    pub fn record(
        &self,
        class: &str,
        arch: &str,
        fingerprint: u64,
        backend: &str,
        predicted_us: f64,
        measured_us: f64,
    ) {
        if !predicted_us.is_finite() || !measured_us.is_finite() {
            return;
        }
        if predicted_us <= 0.0 || measured_us <= 0.0 {
            return;
        }
        let key = CalibKey {
            class: class.to_string(),
            arch: arch.to_string(),
            backend: backend.to_string(),
            fingerprint,
        };
        let mut entries = self.entries.lock().expect("calibration ledger poisoned");
        entries
            .entry(key)
            .or_default()
            .record(predicted_us, measured_us, self.band);
    }

    /// Folds another ledger's entries into this one (fleet-level merge).
    pub fn merge_from(&self, other: &CalibrationLedger) {
        let theirs = other.entries.lock().expect("calibration ledger poisoned");
        let mut ours = self.entries.lock().expect("calibration ledger poisoned");
        for (key, track) in theirs.iter() {
            ours.entry(key.clone()).or_default().merge_from(track);
        }
    }

    /// The calibrated (measured) mean latency in µs for `class`, averaged
    /// over every arch/backend entry weighted by sample count. `None` until
    /// the class has at least one sample — callers fall back to an
    /// uncalibrated policy.
    pub fn calibrated_us(&self, class: &str) -> Option<f64> {
        let entries = self.entries.lock().expect("calibration ledger poisoned");
        let (mut measured, mut samples) = (0.0f64, 0u64);
        for (key, track) in entries.iter() {
            if key.class == class {
                measured += track.measured_sum;
                samples += track.samples;
            }
        }
        (samples > 0).then(|| measured / samples as f64)
    }

    /// A point-in-time summary of every entry, sorted by key.
    pub fn snapshot(&self) -> Vec<CalibrationSnapshot> {
        let entries = self.entries.lock().expect("calibration ledger poisoned");
        entries
            .iter()
            .map(|(key, track)| {
                let mut sorted = track.rel_errs.clone();
                sorted.sort_by(|a, b| a.total_cmp(b));
                let n = track.samples as f64;
                let mean_ratio = track.ratio_sum / n.max(1.0);
                CalibrationSnapshot {
                    class: key.class.clone(),
                    arch: key.arch.clone(),
                    backend: key.backend.clone(),
                    fingerprint: key.fingerprint,
                    samples: track.samples,
                    predicted_mean_us: track.predicted_sum / n.max(1.0),
                    measured_mean_us: track.measured_sum / n.max(1.0),
                    mape_pct: track.abs_pct_err_sum / n.max(1.0),
                    rel_err_p50: percentile_sorted(&sorted, 50.0),
                    rel_err_p95: percentile_sorted(&sorted, 95.0),
                    mean_ratio,
                    last_ratio: track.last_ratio,
                    drift_count: track.drift_count,
                    drifting: mean_ratio < self.band.0 || mean_ratio > self.band.1,
                }
            })
            .collect()
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (`p` in 0..=100).
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Calibration summary of one `(class, arch, backend)` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSnapshot {
    /// Workload class (e.g. `softmax`, `mha`, `graph`).
    pub class: String,
    /// Architecture display name (e.g. `NVIDIA A10`).
    pub arch: String,
    /// Backend name (`tile-vm` or `cost-model`).
    pub backend: String,
    /// The architecture's latency-relevant fingerprint.
    pub fingerprint: u64,
    /// Recorded (predicted, measured) pairs.
    pub samples: u64,
    /// Mean predicted latency, µs.
    pub predicted_mean_us: f64,
    /// Mean measured wall latency, µs.
    pub measured_mean_us: f64,
    /// Mean absolute percentage error of the predictions.
    pub mape_pct: f64,
    /// Median relative error (windowed).
    pub rel_err_p50: f64,
    /// 95th-percentile relative error (windowed).
    pub rel_err_p95: f64,
    /// Lifetime mean measured/predicted ratio.
    pub mean_ratio: f64,
    /// Ratio of the most recent sample.
    pub last_ratio: f64,
    /// Samples whose ratio left the drift band.
    pub drift_count: u64,
    /// True when the mean ratio itself sits outside the band — the estimate
    /// for this entry can no longer be trusted without recalibration.
    pub drifting: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_reports_mape_and_percentiles_per_key() {
        let ledger = CalibrationLedger::new();
        // 10% over-prediction on every sample: MAPE 10, all ratios 0.9.
        for _ in 0..8 {
            ledger.record("softmax", "NVIDIA A10", 42, "tile-vm", 100.0, 90.0);
        }
        ledger.record("mha", "NVIDIA A10", 42, "tile-vm", 50.0, 100.0);
        let snapshot = ledger.snapshot();
        assert_eq!(snapshot.len(), 2);
        let mha = &snapshot[0];
        assert_eq!((mha.class.as_str(), mha.samples), ("mha", 1));
        assert!((mha.mape_pct - 100.0).abs() < 1e-9);
        let softmax = &snapshot[1];
        assert!((softmax.mape_pct - 10.0).abs() < 1e-9);
        assert!((softmax.rel_err_p50 - 0.1).abs() < 1e-12);
        assert!((softmax.rel_err_p95 - 0.1).abs() < 1e-12);
        assert!((softmax.mean_ratio - 0.9).abs() < 1e-12);
        assert!(!softmax.drifting);
        assert_eq!(softmax.drift_count, 0);
    }

    #[test]
    fn ratios_outside_the_band_raise_the_drift_flag() {
        let ledger = CalibrationLedger::with_band(0.5, 2.0);
        ledger.record("softmax", "a", 1, "tile-vm", 100.0, 450.0);
        ledger.record("softmax", "a", 1, "tile-vm", 100.0, 420.0);
        let entry = &ledger.snapshot()[0];
        assert_eq!(entry.drift_count, 2);
        assert!(entry.drifting);
        assert!(entry.mean_ratio > 4.0);
    }

    #[test]
    fn degenerate_pairs_are_discarded() {
        let ledger = CalibrationLedger::new();
        ledger.record("softmax", "a", 1, "tile-vm", 0.0, 10.0);
        ledger.record("softmax", "a", 1, "tile-vm", 10.0, f64::NAN);
        ledger.record("softmax", "a", 1, "tile-vm", -5.0, 10.0);
        assert!(ledger.snapshot().is_empty());
        assert_eq!(ledger.calibrated_us("softmax"), None);
    }

    #[test]
    fn merge_and_calibrated_estimates_pool_across_arches() {
        let a = CalibrationLedger::new();
        let b = CalibrationLedger::new();
        a.record("softmax", "a10", 1, "tile-vm", 100.0, 80.0);
        b.record("softmax", "h800", 2, "tile-vm", 100.0, 120.0);
        b.record("mha", "h800", 2, "tile-vm", 10.0, 10.0);
        a.merge_from(&b);
        assert_eq!(a.snapshot().len(), 3);
        let softmax = a.calibrated_us("softmax").unwrap();
        assert!((softmax - 100.0).abs() < 1e-9);
        assert_eq!(a.calibrated_us("missing"), None);
    }
}
