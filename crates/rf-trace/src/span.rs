//! The ring-buffer span collector and its event model.
//!
//! Workers record [`TraceEvent`]s — spans with a start timestamp and a
//! duration, or zero-length instants — into a bounded ring owned by a
//! [`TraceCollector`]. The ring is a single mutex around a `VecDeque`: each
//! record is one short critical section (push + possibly pop), never held
//! across compilation or execution, and when tracing is off the collector is
//! a branch on an immutable field — no lock, no allocation, no timestamp.
//! When the ring is full the *oldest* event is dropped and counted, so the
//! collector can never grow without bound or stall a worker.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How much the engine records about itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// No tracing: no spans, no stage histograms. The hot path pays a single
    /// predictable branch.
    Off,
    /// Stage/lane/class latency histograms only (lifetime-accurate
    /// percentiles in `MetricsSnapshot`), no per-event span buffer.
    #[default]
    Histograms,
    /// Histograms plus the full per-request span timeline, exportable as
    /// Chrome trace-event JSON.
    Full,
}

impl TraceLevel {
    /// Whether per-event spans are recorded.
    pub fn spans_enabled(self) -> bool {
        matches!(self, TraceLevel::Full)
    }

    /// Whether stage/lane/class histograms are recorded.
    pub fn histograms_enabled(self) -> bool {
        !matches!(self, TraceLevel::Off)
    }

    /// The level's name (`"off"`, `"histograms"`, `"full"`).
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Histograms => "histograms",
            TraceLevel::Full => "full",
        }
    }
}

/// Tracing configuration carried by the engine's `RuntimeConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// How much to record.
    pub level: TraceLevel,
    /// Bound on buffered span events at [`TraceLevel::Full`]. When the ring
    /// is full the oldest event is dropped (and counted) — the collector
    /// keeps the most recent window of activity.
    pub capacity: usize,
    /// Whether the tile-VM op profiler is live (see
    /// [`crate::profile::OpProfiler`]). Off by default: the serving path
    /// only takes the profiled interpreter entry point when this is set, so
    /// the plain path stays bit-identical and overhead-free.
    pub profile: bool,
    /// Width of one rolling-telemetry window, milliseconds (see
    /// [`crate::timeseries::RollingTelemetry`]).
    pub window_ms: u64,
    /// Number of rolling-telemetry windows retained.
    pub windows: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            level: TraceLevel::default(),
            capacity: 65_536,
            profile: false,
            window_ms: crate::timeseries::DEFAULT_WINDOW_MS,
            windows: crate::timeseries::DEFAULT_WINDOWS,
        }
    }
}

impl TraceConfig {
    /// Tracing fully off.
    pub fn off() -> Self {
        TraceConfig {
            level: TraceLevel::Off,
            ..TraceConfig::default()
        }
    }

    /// Headline histograms only (the default).
    pub fn histograms() -> Self {
        TraceConfig {
            level: TraceLevel::Histograms,
            ..TraceConfig::default()
        }
    }

    /// Full span recording with the default buffer bound.
    pub fn full() -> Self {
        TraceConfig {
            level: TraceLevel::Full,
            ..TraceConfig::default()
        }
    }

    /// Returns the configuration with `capacity` buffered events.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Returns the configuration with the tile-VM op profiler switched
    /// on/off. Independent of `level`: a profile can be captured even with
    /// span tracing off.
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Returns the configuration with a rolling-telemetry ring of `windows`
    /// windows of `window_ms` milliseconds each.
    pub fn with_windows(mut self, window_ms: u64, windows: usize) -> Self {
        self.window_ms = window_ms;
        self.windows = windows;
        self
    }
}

/// Whether an event covers a time range or marks a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventPhase {
    /// A complete span: `ts_us .. ts_us + dur_us`.
    Span,
    /// A zero-length marker.
    Instant,
}

/// One extra key/value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned counter.
    U64(u64),
    /// A float (microseconds, rates).
    F64(f64),
    /// Free text.
    Text(String),
}

/// One recorded event. Timestamps are microseconds since the collector's
/// epoch (engine construction), monotonic.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span/stage name (e.g. `"queue"`, `"compile"`, `"execute"`).
    pub name: &'static str,
    /// Span or instant.
    pub phase: EventPhase,
    /// Start, µs since the collector epoch.
    pub ts_us: f64,
    /// Duration in µs (0 for instants).
    pub dur_us: f64,
    /// The track the event renders on: request id for request-lifecycle
    /// spans, worker index for engine events (see [`TraceEvent::track_id`]).
    pub track: Track,
    /// The request this event belongs to, if any.
    pub request: Option<u64>,
    /// The priority lane name, if known.
    pub lane: Option<&'static str>,
    /// The workload class, if known.
    pub class: Option<&'static str>,
    /// The engine iteration, if known.
    pub iteration: Option<u64>,
    /// The fleet device this event happened on, if any. Device-tagged events
    /// are exported under their own Chrome process (`pid = device + 2`), so
    /// each device renders as its own track group in Perfetto; untagged
    /// events stay on the engine-wide process (`pid = 1`).
    pub device: Option<usize>,
    /// Extra key/values exported into the trace viewer's args pane.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// The timeline a [`TraceEvent`] renders on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    /// A per-request lifecycle track.
    Request(u64),
    /// A worker thread's engine track (iterations, batch formation).
    Worker(usize),
    /// The submission front door (sheds, admission).
    FrontDoor,
}

impl TraceEvent {
    /// A new span covering `ts_us .. ts_us + dur_us`.
    pub fn span(name: &'static str, ts_us: f64, dur_us: f64, track: Track) -> Self {
        TraceEvent {
            name,
            phase: EventPhase::Span,
            ts_us,
            dur_us: dur_us.max(0.0),
            track,
            request: None,
            lane: None,
            class: None,
            iteration: None,
            device: None,
            args: Vec::new(),
        }
    }

    /// A new instant marker at `ts_us`.
    pub fn instant(name: &'static str, ts_us: f64, track: Track) -> Self {
        TraceEvent {
            phase: EventPhase::Instant,
            dur_us: 0.0,
            ..TraceEvent::span(name, ts_us, 0.0, track)
        }
    }

    /// Attaches the request id.
    pub fn with_request(mut self, id: u64) -> Self {
        self.request = Some(id);
        self
    }

    /// Attaches the lane name.
    pub fn with_lane(mut self, lane: &'static str) -> Self {
        self.lane = Some(lane);
        self
    }

    /// Attaches the workload class.
    pub fn with_class(mut self, class: &'static str) -> Self {
        self.class = Some(class);
        self
    }

    /// Attaches the engine iteration.
    pub fn with_iteration(mut self, iteration: u64) -> Self {
        self.iteration = Some(iteration);
        self
    }

    /// Attaches the fleet device index.
    pub fn with_device(mut self, device: usize) -> Self {
        self.device = Some(device);
        self
    }

    /// Attaches one extra key/value.
    pub fn with_arg(mut self, key: &'static str, value: ArgValue) -> Self {
        self.args.push((key, value));
        self
    }

    /// The Chrome `pid` this event renders under: every device-tagged event
    /// gets its device's own process (`device + 2`), so a fleet exports one
    /// track group per device; untagged events share process 1.
    pub fn process_id(&self) -> u64 {
        self.device.map_or(1, |d| d as u64 + 2)
    }

    /// The numeric track (Chrome `tid`) this event renders on. Request
    /// tracks are offset so they never collide with worker tracks. Tracks
    /// are only unique *within* a process — a fleet reuses the same worker
    /// tids on every device pid (see [`TraceEvent::process_id`]).
    pub fn track_id(&self) -> u64 {
        match self.track {
            Track::FrontDoor => 0,
            Track::Worker(i) => 1 + i as u64,
            Track::Request(id) => REQUEST_TRACK_BASE + id,
        }
    }
}

/// First Chrome `tid` used for per-request tracks; worker tracks sit below.
pub const REQUEST_TRACK_BASE: u64 = 1_000;

/// The drained contents of a collector.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSnapshot {
    /// Buffered events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events overwritten because the ring was full.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Renders the snapshot as Chrome trace-event JSON (see
    /// [`crate::chrome_trace_json`]).
    pub fn chrome_trace(&self) -> String {
        crate::chrome::chrome_trace_json(self)
    }
}

/// The bounded, lock-minimal span collector. See the module docs.
#[derive(Debug)]
pub struct TraceCollector {
    level: TraceLevel,
    capacity: usize,
    epoch: Instant,
    ring: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

impl TraceCollector {
    /// Creates a collector for `config`, with its epoch at "now".
    pub fn new(config: TraceConfig) -> Self {
        TraceCollector {
            level: config.level,
            capacity: config.capacity.max(1),
            epoch: Instant::now(),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// The configured level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Whether span recording is on — callers should branch on this before
    /// assembling an event, so the off path does no work at all.
    pub fn enabled(&self) -> bool {
        self.level.spans_enabled()
    }

    /// Microseconds since the collector's epoch.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Microseconds from the epoch to `at` (0 for instants before the
    /// epoch).
    pub fn ts_us_of(&self, at: Instant) -> f64 {
        at.checked_duration_since(self.epoch)
            .map(|d| d.as_secs_f64() * 1e6)
            .unwrap_or(0.0)
    }

    /// Buffers one event; drops (and counts) the oldest when full. No-op
    /// below [`TraceLevel::Full`].
    pub fn record(&self, event: TraceEvent) {
        if !self.enabled() {
            return;
        }
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Events overwritten so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies the buffered events out (oldest first) without clearing them.
    pub fn snapshot(&self) -> TraceSnapshot {
        let ring = self.ring.lock().expect("trace ring poisoned");
        TraceSnapshot {
            events: ring.iter().cloned().collect(),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    /// Exports the buffered events as Chrome trace-event JSON.
    pub fn chrome_trace(&self) -> String {
        self.snapshot().chrome_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_gate_spans_and_histograms() {
        assert!(!TraceLevel::Off.histograms_enabled());
        assert!(!TraceLevel::Off.spans_enabled());
        assert!(TraceLevel::Histograms.histograms_enabled());
        assert!(!TraceLevel::Histograms.spans_enabled());
        assert!(TraceLevel::Full.spans_enabled());
        assert_eq!(TraceLevel::default(), TraceLevel::Histograms);
        assert_eq!(TraceConfig::default().level, TraceLevel::Histograms);
        assert_eq!(TraceConfig::full().level.name(), "full");
    }

    #[test]
    fn collector_below_full_records_nothing() {
        let c = TraceCollector::new(TraceConfig::histograms());
        c.record(TraceEvent::instant("submit", c.now_us(), Track::FrontDoor));
        assert!(c.snapshot().events.is_empty());
        assert_eq!(c.dropped(), 0);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let c = TraceCollector::new(TraceConfig::full().with_capacity(4));
        for i in 0..10u64 {
            c.record(TraceEvent::span("execute", i as f64, 1.0, Track::Request(i)).with_request(i));
        }
        let snap = c.snapshot();
        assert_eq!(snap.events.len(), 4, "ring holds the most recent window");
        assert_eq!(snap.dropped, 6);
        // The survivors are the newest events, oldest first.
        let ids: Vec<u64> = snap.events.iter().filter_map(|e| e.request).collect();
        assert_eq!(ids, [6, 7, 8, 9]);
    }

    #[test]
    fn timestamps_are_monotonic_from_the_epoch() {
        let c = TraceCollector::new(TraceConfig::full());
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a && a >= 0.0);
        if let Some(before_epoch) = Instant::now().checked_sub(std::time::Duration::from_secs(60)) {
            assert_eq!(c.ts_us_of(before_epoch), 0.0, "pre-epoch clamps to zero");
        }
        assert!(c.ts_us_of(Instant::now()) >= a);
    }

    #[test]
    fn tracks_never_collide() {
        let front = TraceEvent::instant("shed", 0.0, Track::FrontDoor);
        let worker = TraceEvent::span("iteration", 0.0, 1.0, Track::Worker(3));
        let request = TraceEvent::span("queue", 0.0, 1.0, Track::Request(3));
        assert_eq!(front.track_id(), 0);
        assert_eq!(worker.track_id(), 4);
        assert_eq!(request.track_id(), REQUEST_TRACK_BASE + 3);
    }

    #[test]
    fn device_tags_select_the_process_but_not_the_track() {
        let plain = TraceEvent::span("iteration", 0.0, 1.0, Track::Worker(0));
        assert_eq!(plain.process_id(), 1);
        let tagged = plain.clone().with_device(3);
        assert_eq!(tagged.process_id(), 5);
        assert_eq!(tagged.track_id(), plain.track_id());
        assert_eq!(tagged.device, Some(3));
    }
}
