//! Property test: **randomly generated** fusable cascades evaluate identically
//! under the naive chain-of-trees, incremental and fused-tree evaluators.
//!
//! The unit tests in `eval.rs` cross-check the evaluators on the paper's five
//! fixed patterns; this test draws cascades from a small grammar spanning the
//! four fusable map-function families the paper's case studies cover
//! (softmax-like, quant-like, attention-like, sum+sum-like), with randomized
//! per-element selectors, weight terms, reduction operators and constants.
//! It is the correctness oracle backing `rf-runtime`'s execution path: any
//! cascade the runtime serves evaluates through exactly these code paths.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rf_algebra::ReduceOp;
use rf_expr::Expr;
use rf_fusion::{
    analyze_cascade, CascadeInput, CascadeSpec, FusedTreeEvaluator, IncrementalEvaluator,
    NaiveCascadeEvaluator, ReductionSpec, TreeShape,
};

/// Constants mixed into the generated map functions. All are safe for every
/// family (no overflow under inputs in `[-2, 2]` and lengths up to 128).
const CONSTANTS: [f64; 4] = [0.25, 1.0, 3.5, 7.0];

/// Per-element selector `s(x)` applied to the reduced input variable.
fn selector(expr: &Expr, idx: usize, c: f64) -> Expr {
    match idx % 4 {
        0 => expr.clone(),
        1 => expr.clone().abs(),
        2 => expr.clone() * expr.clone(),
        _ => expr.clone() + Expr::constant(c),
    }
}

/// Weight term `w(y)` multiplied into a dependent sum.
fn weight(expr: &Expr, idx: usize) -> Expr {
    match idx % 3 {
        0 => Expr::constant(1.0),
        1 => expr.clone(),
        _ => expr.clone() * expr.clone(),
    }
}

/// Builds one cascade from the grammar. Every output is fusable by
/// construction: each dependent map is a product `G(x, y) ⊗ H(m, t)`, the
/// shape the ACRF fixed-point identity accepts.
fn random_cascade(family: usize, s0: usize, s1: usize, c_idx: usize) -> CascadeSpec {
    let c = CONSTANTS[c_idx % CONSTANTS.len()];
    let x = Expr::var("x");
    let y = Expr::var("y");
    let m = Expr::var("m");
    let t = Expr::var("t");
    let inputs = vec!["x".to_string(), "y".to_string()];
    let name = format!("random_f{family}_s{s0}_w{s1}_c{c_idx}");
    // Max- and Min-seeded exponentials both stay bounded for inputs in [-2, 2].
    let peak_op = if s1.is_multiple_of(2) {
        ReduceOp::Max
    } else {
        ReduceOp::Min
    };
    match family % 4 {
        // Softmax-like: peak reduction, then a weighted sum of shifted
        // exponentials.
        0 => {
            let s = selector(&x, s0, c);
            CascadeSpec::new(
                name,
                inputs,
                vec![
                    ReductionSpec::new("m", peak_op, s.clone()),
                    ReductionSpec::new("t", ReduceOp::Sum, (s - m).exp() * weight(&y, s1)),
                ],
            )
        }
        // Quant-like: abs-max scale, then a scaled weighted inner product.
        1 => {
            let s = selector(&x, s0, c).abs() + Expr::constant(0.5);
            CascadeSpec::new(
                name,
                inputs,
                vec![
                    ReductionSpec::new("m", ReduceOp::Max, s),
                    ReductionSpec::new(
                        "t",
                        ReduceOp::Sum,
                        Expr::constant(c) * x / m * weight(&y, s1),
                    ),
                ],
            )
        }
        // Attention-like: softmax statistics plus a normalised weighted sum.
        2 => {
            let s = selector(&x, s0, c);
            CascadeSpec::new(
                name,
                inputs,
                vec![
                    ReductionSpec::new("m", peak_op, s.clone()),
                    ReductionSpec::new("t", ReduceOp::Sum, (s.clone() - m.clone()).exp()),
                    ReductionSpec::new(
                        "o",
                        ReduceOp::Sum,
                        (s - m).exp() / t * weight(&y, s1.max(1)),
                    ),
                ],
            )
        }
        // Sum+sum-like: an energy sum, then a sum scaled by a guarded root of
        // the energy.
        _ => {
            let s = selector(&x, s0, c);
            let denom = (m - Expr::constant(c)).max(Expr::constant(1e-3)).sqrt();
            CascadeSpec::new(
                name,
                inputs,
                vec![
                    ReductionSpec::new("m", ReduceOp::Sum, s.clone() * s),
                    ReductionSpec::new("t", ReduceOp::Sum, x * weight(&y, s1) / denom),
                ],
            )
        }
    }
    .expect("generated cascades are structurally valid")
}

fn random_input(len: usize, seed: u64) -> CascadeInput {
    let mut rng = StdRng::seed_from_u64(seed);
    CascadeInput::new([
        (
            "x".to_string(),
            (0..len)
                .map(|_| rng.gen_range(-2.0..2.0))
                .collect::<Vec<f64>>(),
        ),
        (
            "y".to_string(),
            (0..len)
                .map(|_| rng.gen_range(-2.0..2.0))
                .collect::<Vec<f64>>(),
        ),
    ])
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-7 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn every_grammar_point_is_fusable() {
    for family in 0..4 {
        for s0 in 0..4 {
            for s1 in 0..3 {
                for c_idx in 0..CONSTANTS.len() {
                    let spec = random_cascade(family, s0, s1, c_idx);
                    analyze_cascade(&spec)
                        .unwrap_or_else(|e| panic!("{} should be fusable, got {e}", spec.name));
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_random_fusable_cascades_agree_across_evaluators(
        family in 0usize..4,
        s0 in 0usize..4,
        s1 in 0usize..3,
        c_idx in 0usize..4,
        len_pow in 3u32..8,
        seed in 0u64..10_000,
    ) {
        let len = 1usize << len_pow;
        let spec = random_cascade(family, s0, s1, c_idx);
        let plan = analyze_cascade(&spec).expect("grammar only emits fusable cascades");
        let input = random_input(len, seed);

        let naive = NaiveCascadeEvaluator::new().evaluate(&spec, &input);
        let incremental = IncrementalEvaluator::new().evaluate(&plan, &input);
        for (a, b) in naive.iter().zip(&incremental) {
            prop_assert!(close(*a, *b), "{}: naive={a} incremental={b}", spec.name);
        }

        // The fused reduction tree must agree for every level hierarchy, not
        // just the flat one.
        for shape in [
            TreeShape::flat(len),
            TreeShape::gpu_hierarchy(len, len / 2, len / 4, 2),
        ] {
            let tree = FusedTreeEvaluator::new().evaluate(&plan, &input, &shape);
            for (a, b) in naive.iter().zip(&tree) {
                prop_assert!(close(*a, *b), "{} ({shape}): naive={a} tree={b}", spec.name);
            }
        }

        // Splitting the stream and merging partials must match the single
        // pass (the runtime's multi-segment execution path).
        if len >= 16 {
            let inc = IncrementalEvaluator::new();
            let quarters: Vec<Vec<f64>> = (0..4)
                .map(|j| inc.evaluate_range(&plan, &input, j * len / 4, (j + 1) * len / 4))
                .collect();
            let merged = inc.merge_partials(&plan, &quarters);
            for (a, b) in naive.iter().zip(&merged) {
                prop_assert!(close(*a, *b), "{} (merge): naive={a} merged={b}", spec.name);
            }
        }
    }
}
