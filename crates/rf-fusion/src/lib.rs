//! Cascaded-reduction fusion: the core contribution of RedFuser.
//!
//! This crate implements §3 and §4.2 of the paper:
//!
//! * [`cascade`] — the formal model of cascaded reductions (Eq. 1): a set of
//!   reductions `d_i = R_i_{l} F_i(X[l], D_i)` where the map function of each
//!   reduction may depend on the results of all preceding reductions.
//! * [`tree`] — reduction-tree shapes (Eq. 2–3), the chain-of-trees execution
//!   model, and the memory-access accounting behind Figure 7.
//! * [`acrf`] — the **Automatic Cascaded Reductions Fusion** algorithm
//!   (Algorithm 1): Table 1 lookup of the combine operator, fixed-point
//!   analysis (Eq. 23) for decomposability, and extraction of `G_i`/`H_i`
//!   (Eq. 24–25).
//! * [`plan`] — the resulting [`plan::FusionPlan`], including pretty-printers
//!   for the fused (Eq. 11) and incremental (Eq. 15–16) forms.
//! * [`eval`] — three numeric evaluators used as correctness oracles: the
//!   naive chain-of-trees evaluation, the fused reduction-tree evaluation and
//!   the streaming incremental evaluation.
//! * [`patterns`] — canonical cascades from the paper (safe softmax, attention,
//!   FP8 quant + GEMM, MoE routing scores, the "Sum + Sum" internal pattern)
//!   plus deliberately non-fusable examples.
//!
//! # Example: fusing safe softmax
//!
//! ```
//! use rf_fusion::{acrf::analyze_cascade, patterns};
//!
//! let cascade = patterns::safe_softmax();
//! let plan = analyze_cascade(&cascade).unwrap();
//! // The sum-of-exp reduction decomposes as G(x) = exp(x), H(m) = exp(-m).
//! let sum_exp = &plan.reductions[1];
//! assert_eq!(sum_exp.combine, rf_algebra::BinaryOp::Mul);
//! ```

pub mod acrf;
pub mod cascade;
pub mod eval;
pub mod patterns;
pub mod plan;
pub mod tree;

pub use acrf::{analyze_cascade, analyze_reduction, AcrfError};
pub use cascade::{CascadeInput, CascadeSpec, ReductionSpec};
pub use eval::{FusedTreeEvaluator, IncrementalEvaluator, NaiveCascadeEvaluator};
pub use plan::{FusedReduction, FusionPlan};
pub use tree::TreeShape;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_compose() {
        let cascade = patterns::safe_softmax();
        assert_eq!(cascade.reductions.len(), 2);
        assert!(analyze_cascade(&cascade).is_ok());
    }
}
