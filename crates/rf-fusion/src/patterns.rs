//! Canonical cascaded-reduction patterns from the paper.
//!
//! These constructors build [`CascadeSpec`]s for the workloads evaluated in §5
//! and the case studies of §3.4 and Appendix A.2, plus a deliberately
//! non-fusable pattern used by negative tests.

use rf_algebra::ReduceOp;
use rf_expr::Expr;

use crate::cascade::{CascadeSpec, ReductionSpec};

/// The maximum representable value of the FP8 E4M3 format, used as the `MAX`
/// constant of the per-token quantization case study (§3.4).
pub const FP8_E4M3_MAX: f64 = 448.0;

/// Safe softmax (§2.2): a max reduction followed by a sum of shifted
/// exponentials.
///
/// ```text
/// m = max_l x[l]
/// t = Σ_l exp(x[l] - m)
/// ```
pub fn safe_softmax() -> CascadeSpec {
    let x = Expr::var("x");
    let m = Expr::var("m");
    CascadeSpec::new(
        "safe_softmax",
        vec!["x".to_string()],
        vec![
            ReductionSpec::new("m", ReduceOp::Max, x.clone()),
            ReductionSpec::new("t", ReduceOp::Sum, (x - m).exp()),
        ],
    )
    .expect("safe softmax is a valid cascade")
}

/// One attention output component (Appendix A.2.1, Eq. 29): softmax over the
/// score row `p` followed by a weighted sum of the value component `v`.
///
/// ```text
/// m = max_l p[l]
/// t = Σ_l exp(p[l] - m)
/// o = Σ_l exp(p[l] - m) / t * v[l]
/// ```
pub fn attention_row() -> CascadeSpec {
    let p = Expr::var("p");
    let v = Expr::var("v");
    let m = Expr::var("m");
    let t = Expr::var("t");
    CascadeSpec::new(
        "attention_row",
        vec!["p".to_string(), "v".to_string()],
        vec![
            ReductionSpec::new("m", ReduceOp::Max, p.clone()),
            ReductionSpec::new("t", ReduceOp::Sum, (p.clone() - m.clone()).exp()),
            ReductionSpec::new("o", ReduceOp::Sum, (p - m).exp() / t * v),
        ],
    )
    .expect("attention row is a valid cascade")
}

/// FP8 per-token quantization followed by one GEMM output element (§3.4,
/// Eq. 17): an abs-max reduction computing the dynamic scale, then a scaled
/// inner product with the weight column `w`.
///
/// ```text
/// m = max_l |a[l]|
/// c = Σ_l (MAX * a[l] / m) * w[l]
/// ```
pub fn fp8_quant_gemm() -> CascadeSpec {
    let a = Expr::var("a");
    let w = Expr::var("w");
    let m = Expr::var("m");
    CascadeSpec::new(
        "fp8_quant_gemm",
        vec!["a".to_string(), "w".to_string()],
        vec![
            ReductionSpec::new("m", ReduceOp::Max, a.clone().abs()),
            ReductionSpec::new("c", ReduceOp::Sum, Expr::constant(FP8_E4M3_MAX) * a / m * w),
        ],
    )
    .expect("fp8 quant + gemm is a valid cascade")
}

/// The softmax part of MoE routing (Appendix A.2.2, Eq. 34): gating scores are
/// normalised by a max + sum-of-exp cascade. The top-k selection itself is a
/// segmented max-family reduction handled by `rf-kernels::moe`.
pub fn moe_routing_scores() -> CascadeSpec {
    let x = Expr::var("score");
    let m = Expr::var("m");
    CascadeSpec::new(
        "moe_routing_scores",
        vec!["score".to_string()],
        vec![
            ReductionSpec::new("m", ReduceOp::Max, x.clone()),
            ReductionSpec::new("t", ReduceOp::Sum, (x - m).exp()),
        ],
    )
    .expect("moe routing scores is a valid cascade")
}

/// The "Sum + Sum" internal-model pattern of Appendix A.2.3 (Eq. 39):
///
/// ```text
/// m = Σ_l x1[l]^2
/// s = Σ_l x1[l] * x2[l] / sqrt(max(m - 10, eps))
/// ```
///
/// The small `eps` guard keeps the square root defined for every input, which
/// matches the paper's `max(m - 10)` clamp.
pub fn sum_sum() -> CascadeSpec {
    let x1 = Expr::var("x1");
    let x2 = Expr::var("x2");
    let m = Expr::var("m");
    let denom = (m - Expr::constant(10.0)).max(Expr::constant(1e-3)).sqrt();
    CascadeSpec::new(
        "sum_sum",
        vec!["x1".to_string(), "x2".to_string()],
        vec![
            ReductionSpec::new("m", ReduceOp::Sum, x1.clone() * x1.clone()),
            ReductionSpec::new("s", ReduceOp::Sum, x1 * x2 / denom),
        ],
    )
    .expect("sum + sum is a valid cascade")
}

/// Single-pass batched variance via the sum / sum-of-squares sufficient
/// statistics (Appendix A.6): two **independent** reductions fused for
/// locality rather than for a data dependency.
///
/// ```text
/// s = Σ_l x[l]
/// q = Σ_l x[l]^2
/// ```
///
/// The epilogue `var = q/L - (s/L)^2` is pure scalar arithmetic on the fused
/// results. This is the form `rf-kernels::nonml` and the tile-program lowering
/// execute; the algebraically equivalent *dependent* two-pass form is the
/// canonical non-fusable pattern ([`non_decomposable_variance`]).
pub fn variance_sufficient_stats() -> CascadeSpec {
    let x = Expr::var("x");
    CascadeSpec::new(
        "variance_sufficient_stats",
        vec!["x".to_string()],
        vec![
            ReductionSpec::new("s", ReduceOp::Sum, x.clone()),
            ReductionSpec::new("q", ReduceOp::Sum, x.clone() * x),
        ],
    )
    .expect("variance sufficient statistics form a valid cascade")
}

/// Single-pass moment of inertia via the parallel-axis sufficient statistics
/// (Table 3b): total mass, first moment and second moment along one
/// representative axis.
///
/// ```text
/// mt = Σ_l mass[l]
/// s  = Σ_l mass[l] * x[l]
/// q  = Σ_l mass[l] * x[l]^2
/// ```
///
/// All three reductions are independent, so the cascade is trivially fusable;
/// the per-dimension vectorisation (`Σ m·x_d` for every axis `d`) is handled
/// by the batched kernels in `rf-kernels::nonml`, exactly as the attention
/// output row is vectorised over head components.
pub fn inertia_sufficient_stats() -> CascadeSpec {
    let mass = Expr::var("mass");
    let x = Expr::var("x");
    CascadeSpec::new(
        "inertia_sufficient_stats",
        vec!["mass".to_string(), "x".to_string()],
        vec![
            ReductionSpec::new("mt", ReduceOp::Sum, mass.clone()),
            ReductionSpec::new("s", ReduceOp::Sum, mass.clone() * x.clone()),
            ReductionSpec::new("q", ReduceOp::Sum, mass * x.clone() * x),
        ],
    )
    .expect("inertia sufficient statistics form a valid cascade")
}

/// A cascade whose second reduction is **not** decomposable as `G(x) ⊗ H(d)`:
/// the textbook two-pass variance `Σ (x - mean)^2`, kept in its dependent form.
///
/// ACRF correctly reports this as not fusable; the variance *workload* of the
/// paper's Appendix A.6 is instead lowered to the algebraically equivalent
/// single-pass sum / sum-of-squares form by `rf-kernels::nonml`.
pub fn non_decomposable_variance() -> CascadeSpec {
    let x = Expr::var("x");
    let m = Expr::var("m");
    let centered = x.clone() - m;
    CascadeSpec::new(
        "two_pass_variance",
        vec!["x".to_string()],
        vec![
            ReductionSpec::new("m", ReduceOp::Sum, x),
            ReductionSpec::new("v", ReduceOp::Sum, centered.clone() * centered),
        ],
    )
    .expect("two-pass variance is a valid (but non-fusable) cascade")
}

/// All fusable example patterns, used by exhaustive tests and the quickstart
/// example.
pub fn all_fusable() -> Vec<CascadeSpec> {
    vec![
        safe_softmax(),
        attention_row(),
        fp8_quant_gemm(),
        moe_routing_scores(),
        sum_sum(),
        variance_sufficient_stats(),
        inertia_sufficient_stats(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acrf::analyze_cascade;

    #[test]
    fn all_patterns_validate() {
        for spec in all_fusable() {
            assert!(spec.validate().is_ok(), "{} should validate", spec.name);
        }
        assert!(non_decomposable_variance().validate().is_ok());
    }

    #[test]
    fn all_fusable_patterns_are_accepted_by_acrf() {
        for spec in all_fusable() {
            assert!(
                analyze_cascade(&spec).is_ok(),
                "{} should be fusable",
                spec.name
            );
        }
    }

    #[test]
    fn dependency_chains_are_as_documented() {
        let attn = attention_row();
        assert_eq!(attn.dependencies_of(1), vec!["m".to_string()]);
        assert_eq!(
            attn.dependencies_of(2),
            vec!["m".to_string(), "t".to_string()]
        );
        let quant = fp8_quant_gemm();
        assert_eq!(quant.dependencies_of(1), vec!["m".to_string()]);
    }

    #[test]
    fn fp8_max_constant_matches_e4m3() {
        assert_eq!(FP8_E4M3_MAX, 448.0);
    }

    #[test]
    fn sufficient_stats_patterns_are_independent_reductions() {
        let var = analyze_cascade(&variance_sufficient_stats()).unwrap();
        assert!(var.reductions.iter().all(|r| r.is_independent()));
        let inertia = analyze_cascade(&inertia_sufficient_stats()).unwrap();
        assert_eq!(inertia.len(), 3);
        assert!(inertia.reductions.iter().all(|r| r.is_independent()));
    }
}
