//! Fusion plans: the output of the ACRF analysis.
//!
//! For each reduction of a cascade, a [`FusedReduction`] records the extracted
//! decomposition `F_i(x, d) = G_i(x) ⊗_i H_i(d)` together with the operators
//! involved. A [`FusionPlan`] bundles these for the whole cascade and can
//! render the fused (Eq. 11) and incremental (Eq. 15–16) computation forms.

use std::fmt;

use rf_algebra::{BinaryOp, ReduceOp};
use rf_expr::Expr;

use crate::cascade::CascadeSpec;

/// The fused decomposition of a single reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedReduction {
    /// Position of the reduction within the cascade (0-based).
    pub index: usize,
    /// Name of the reduction result (`d_i`).
    pub name: String,
    /// The reduction operator `R_i`.
    pub reduce: ReduceOp,
    /// The `⊕_i` used for fusion (Table 1's `⊕`, i.e. [`ReduceOp::fusion_plus`]).
    pub plus: BinaryOp,
    /// The combine operator `⊗_i` from Table 1.
    pub combine: BinaryOp,
    /// The original map function `F_i(X[l], D_i)`.
    pub map: Expr,
    /// The input-only factor `G_i(X[l])`.
    pub g: Expr,
    /// The dependency-only factor `H_i(D_i)`.
    pub h: Expr,
    /// Dependency variable names (earlier reduction results used by `F_i`).
    pub deps: Vec<String>,
    /// Input variable names used by `F_i`.
    pub input_vars: Vec<String>,
}

impl FusedReduction {
    /// Whether this reduction has no dependencies (so no correction is needed;
    /// cf. the dataflow-based step elimination of Appendix A.4).
    pub fn is_independent(&self) -> bool {
        self.deps.is_empty()
    }

    /// Whether `H_i` is guaranteed invertible everywhere under `⊗_i`.
    ///
    /// `Add` is a group so inversion always succeeds; for `Mul` the value `0`
    /// must be repaired (Appendix A.1); `Max`/`Min` never admit inverses and
    /// always rely on the repair mechanism.
    pub fn h_always_invertible(&self) -> bool {
        self.combine == BinaryOp::Add
    }

    /// Renders the fused level-`k` expression (Eq. 11 instantiated).
    pub fn fused_level_expression(&self) -> String {
        if self.is_independent() {
            format!(
                "{name}^k_j = {plus} over j' in segment of {name}^(k-1)_j'",
                name = self.name,
                plus = self.plus,
            )
        } else {
            format!(
                "{name}^k_j = {plus} over j' in segment of [{name}^(k-1)_j' {c} inv({h_prev}) {c} {h_cur}]",
                name = self.name,
                plus = self.plus,
                c = self.combine,
                h_prev = render_h(&self.h, &self.deps, "^(k-1)"),
                h_cur = render_h(&self.h, &self.deps, "^k"),
            )
        }
    }

    /// Renders the incremental update rule (Eq. 15 for level `k > 1`,
    /// Eq. 16 with `G_i(X[L])` for level 1).
    pub fn incremental_update_rule(&self, first_level: bool) -> String {
        let incoming = if first_level {
            format!("{}", self.g)
        } else {
            format!("{}^(k-1)", self.name)
        };
        if self.is_independent() {
            format!(
                "{name}[L] = {name}[L-1] {plus} {incoming}",
                name = self.name,
                plus = self.plus,
            )
        } else {
            format!(
                "{name}[L] = ({name}[L-1] {c} inv({h_prev}) {c} {h_cur}) {plus} ({incoming} {c} {h_cur})",
                name = self.name,
                plus = self.plus,
                c = self.combine,
                h_prev = render_h(&self.h, &self.deps, "[L-1]"),
                h_cur = render_h(&self.h, &self.deps, "[L]"),
            )
        }
    }
}

fn render_h(h: &Expr, deps: &[String], suffix: &str) -> String {
    let mut out = h.clone();
    for dep in deps {
        out = out.substitute(dep, &Expr::var(format!("{dep}{suffix}")));
    }
    format!("H({out})")
}

/// The complete fusion plan for a cascade.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionPlan {
    /// Name of the originating cascade.
    pub cascade_name: String,
    /// Input variable names of the cascade.
    pub inputs: Vec<String>,
    /// One fused reduction per cascade reduction, in order.
    pub reductions: Vec<FusedReduction>,
}

impl FusionPlan {
    /// Number of reductions in the plan.
    pub fn len(&self) -> usize {
        self.reductions.len()
    }

    /// Whether the plan is empty (never the case for plans produced by ACRF).
    pub fn is_empty(&self) -> bool {
        self.reductions.is_empty()
    }

    /// Looks up a fused reduction by result name.
    pub fn reduction(&self, name: &str) -> Option<&FusedReduction> {
        self.reductions.iter().find(|r| r.name == name)
    }

    /// Total number of dependency corrections applied per processed element in
    /// incremental mode (one per dependent reduction). This drives the
    /// correction-overhead terms of the performance model (§5.3).
    pub fn corrections_per_element(&self) -> usize {
        self.reductions
            .iter()
            .filter(|r| !r.is_independent())
            .count()
    }

    /// An upper bound on the scalar operations evaluated per element in the
    /// fused single-pass form (map + correction + reduction work), used by the
    /// auto-tuner's analytic cost heuristics.
    pub fn flops_per_element(&self) -> usize {
        self.reductions
            .iter()
            .map(|r| {
                r.g.node_count()
                    + if r.is_independent() {
                        1
                    } else {
                        2 * r.h.node_count() + 3
                    }
            })
            .sum()
    }

    /// Renders a human-readable report of the plan, mirroring the structure of
    /// the paper's §3.4 case study.
    pub fn report(&self) -> String {
        format!("{self}")
    }

    /// Checks that the plan's reductions correspond one-to-one (by name and
    /// order) to the reductions of `spec`.
    pub fn matches_spec(&self, spec: &CascadeSpec) -> bool {
        self.reductions.len() == spec.reductions.len()
            && self
                .reductions
                .iter()
                .zip(&spec.reductions)
                .all(|(a, b)| a.name == b.name && a.reduce == b.reduce)
    }
}

impl fmt::Display for FusionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FusionPlan for `{}` (inputs: {})",
            self.cascade_name,
            self.inputs.join(", ")
        )?;
        for r in &self.reductions {
            writeln!(
                f,
                "reduction {} `{}` (R = {}, ⊕ = {}, ⊗ = {}):",
                r.index + 1,
                r.name,
                r.reduce,
                r.plus,
                r.combine
            )?;
            writeln!(f, "  F = {}", r.map)?;
            writeln!(f, "  G = {}", r.g)?;
            writeln!(f, "  H = {}", r.h)?;
            writeln!(f, "  fused:       {}", r.fused_level_expression())?;
            writeln!(f, "  incremental: {}", r.incremental_update_rule(true))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::acrf::analyze_cascade;
    use crate::patterns;

    #[test]
    fn softmax_plan_reports_both_forms() {
        let plan = analyze_cascade(&patterns::safe_softmax()).unwrap();
        let report = plan.report();
        assert!(report.contains("G = exp(x)"));
        assert!(report.contains("incremental:"));
        assert!(report.contains("fused:"));
    }

    #[test]
    fn independent_reduction_needs_no_correction() {
        let plan = analyze_cascade(&patterns::safe_softmax()).unwrap();
        assert!(plan.reductions[0].is_independent());
        assert!(!plan.reductions[1].is_independent());
        assert_eq!(plan.corrections_per_element(), 1);
    }

    #[test]
    fn lookup_by_name() {
        let plan = analyze_cascade(&patterns::safe_softmax()).unwrap();
        assert!(plan.reduction("t").is_some());
        assert!(plan.reduction("nope").is_none());
        assert!(plan.matches_spec(&patterns::safe_softmax()));
    }

    #[test]
    fn flops_per_element_positive() {
        let plan = analyze_cascade(&patterns::fp8_quant_gemm()).unwrap();
        assert!(plan.flops_per_element() > 0);
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn h_invertibility_classification() {
        let plan = analyze_cascade(&patterns::attention_row()).unwrap();
        // The max reduction uses ⊗ = + (always invertible), the sum reductions
        // use ⊗ = * (requires the zero repair).
        assert!(plan.reductions[0].h_always_invertible());
        assert!(!plan.reductions[1].h_always_invertible());
    }
}
