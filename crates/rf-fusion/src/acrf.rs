//! The Automatic Cascaded Reductions Fusion (ACRF) algorithm (§4.2, Algorithm 1).
//!
//! For each reduction `d_i = R_i_{l} F_i(X[l], D_i)` the algorithm:
//!
//! 1. determines the combine operator `⊗_i` from the reduction operator via
//!    Table 1 (`rf_algebra::compatible_combine`);
//! 2. selects a *fixed point* `(x_0, d_0)` such that `F_i(x_0, d_0)` is
//!    invertible under `⊗_i` (non-zero when `⊗_i = *`);
//! 3. checks the **fixed-point identity** (Eq. 23)
//!    `F(x, d) ⊗ F(x0, d0) = F(x, d0) ⊗ F(x0, d)` by randomized semantic
//!    equivalence (the SymPy substitute, see `rf_expr::equiv`);
//! 4. extracts `G_i(x) = F_i(x, d0)` (Eq. 24) and
//!    `H_i(d) = F_i(x0, d) ⊗ F_i(x0, d0)^{-1}` (Eq. 25);
//! 5. validates the decomposition `F = G ⊗ H` numerically, then instantiates
//!    the fused and incremental forms (handled by [`crate::plan`] and
//!    [`crate::eval`]).

use std::fmt;

use rf_algebra::{compatible_combine, BinaryOp, LawReport};
use rf_expr::{semantically_equal, simplify, Env, EquivConfig, Expr};

use crate::cascade::{CascadeError, CascadeSpec};
use crate::plan::{FusedReduction, FusionPlan};

/// Errors produced by the ACRF analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum AcrfError {
    /// The cascade itself is malformed.
    Cascade(CascadeError),
    /// The `(⊕, ⊗)` pair fails the commutative-monoid or distributivity laws.
    LawViolation {
        /// Name of the offending reduction.
        reduction: String,
    },
    /// No fixed point with an invertible `F(x0, d0)` could be found.
    NoValidFixedPoint {
        /// Name of the offending reduction.
        reduction: String,
    },
    /// The fixed-point identity (Eq. 23) does not hold: `F_i` cannot be
    /// decomposed as `G_i(x) ⊗ H_i(d)`.
    NotDecomposable {
        /// Name of the offending reduction.
        reduction: String,
    },
}

impl fmt::Display for AcrfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcrfError::Cascade(e) => write!(f, "invalid cascade: {e}"),
            AcrfError::LawViolation { reduction } => {
                write!(
                    f,
                    "reduction `{reduction}`: operator pair violates fusion feasibility laws"
                )
            }
            AcrfError::NoValidFixedPoint { reduction } => {
                write!(
                    f,
                    "reduction `{reduction}`: no fixed point with invertible F(x0, d0) found"
                )
            }
            AcrfError::NotDecomposable { reduction } => {
                write!(
                    f,
                    "reduction `{reduction}`: map function is not decomposable as G(x) ⊗ H(d)"
                )
            }
        }
    }
}

impl std::error::Error for AcrfError {}

impl From<CascadeError> for AcrfError {
    fn from(value: CascadeError) -> Self {
        AcrfError::Cascade(value)
    }
}

/// Candidate constants tried (in order) for the fixed-point components.
///
/// Zero is tried first for dependency variables because it yields the most
/// readable `G_i` (e.g. `exp(x - 0) → exp(x)` for softmax); values that put
/// `F(x0, d0)` outside the invertible domain are skipped automatically.
const FIXED_POINT_CANDIDATES: [f64; 6] = [0.0, 1.0, 0.5, 2.0, -1.0, 1.7];

/// Analyzes a single reduction of the cascade and extracts its decomposition.
///
/// # Errors
///
/// See [`AcrfError`]. In particular [`AcrfError::NotDecomposable`] is returned
/// when the fixed-point identity fails for every candidate fixed point, which
/// is the paper's `NotFusable` outcome.
pub fn analyze_reduction(spec: &CascadeSpec, index: usize) -> Result<FusedReduction, AcrfError> {
    let reduction = &spec.reductions[index];
    let name = reduction.name.clone();
    let combine = compatible_combine(reduction.reduce);
    let plus = reduction.reduce.fusion_plus();

    let laws = LawReport::evaluate(plus, combine);
    if !laws.all_hold() {
        return Err(AcrfError::LawViolation { reduction: name });
    }

    let deps = spec.dependencies_of(index);
    let free = reduction.map.free_vars();
    let input_vars: Vec<String> = spec
        .inputs
        .iter()
        .filter(|v| free.contains(*v))
        .cloned()
        .collect();

    // Independent reductions need no decomposition: G = F, H = identity.
    if deps.is_empty() {
        return Ok(FusedReduction {
            index,
            name,
            reduce: reduction.reduce,
            plus,
            combine,
            map: reduction.map.clone(),
            g: simplify(&reduction.map),
            h: Expr::constant(combine.identity()),
            deps,
            input_vars,
        });
    }

    let all_vars: Vec<&str> = input_vars
        .iter()
        .map(|s| s.as_str())
        .chain(deps.iter().map(|s| s.as_str()))
        .collect();

    let mut found_fixed_point = false;
    for &x0 in &FIXED_POINT_CANDIDATES {
        for &d0 in &FIXED_POINT_CANDIDATES {
            let Some(f00) = eval_at(&reduction.map, &input_vars, x0, &deps, d0) else {
                continue;
            };
            if !f00.is_finite() || !is_invertible(combine, f00) {
                continue;
            }
            found_fixed_point = true;

            // Fixed-point identity (Eq. 23):
            //   F(x, d) ⊗ F(x0, d0) == F(x, d0) ⊗ F(x0, d).
            let f_x_d = reduction.map.clone();
            let f_x_d0 = substitute_group(&reduction.map, &deps, d0);
            let f_x0_d = substitute_group(&reduction.map, &input_vars, x0);
            let lhs = Expr::binary(combine, f_x_d.clone(), Expr::constant(f00));
            let rhs = Expr::binary(combine, f_x_d0.clone(), f_x0_d.clone());
            if !semantically_equal(&lhs, &rhs, &all_vars, &EquivConfig::default()) {
                continue;
            }

            // G_i(x) = F_i(x, d0)                         (Eq. 24)
            // H_i(d) = F_i(x0, d) ⊗ F_i(x0, d0)^{-1}       (Eq. 25)
            let g = simplify(&f_x_d0);
            let h = simplify(&apply_inverse(combine, &f_x0_d, f00));

            // Validate F == G ⊗ H before accepting the fixed point.
            let recomposed = Expr::binary(combine, g.clone(), h.clone());
            if !semantically_equal(
                &reduction.map,
                &recomposed,
                &all_vars,
                &EquivConfig::default(),
            ) {
                continue;
            }

            return Ok(FusedReduction {
                index,
                name,
                reduce: reduction.reduce,
                plus,
                combine,
                map: reduction.map.clone(),
                g,
                h,
                deps,
                input_vars,
            });
        }
    }

    if found_fixed_point {
        Err(AcrfError::NotDecomposable { reduction: name })
    } else {
        Err(AcrfError::NoValidFixedPoint { reduction: name })
    }
}

/// Runs ACRF on every reduction of the cascade.
///
/// # Errors
///
/// Fails if the cascade is invalid or any reduction is not fusable; the error
/// identifies the offending reduction so a front-end can fall back to partial
/// fusion or unfused execution for that subgraph.
pub fn analyze_cascade(spec: &CascadeSpec) -> Result<FusionPlan, AcrfError> {
    spec.validate()?;
    let reductions = (0..spec.reductions.len())
        .map(|i| analyze_reduction(spec, i))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FusionPlan {
        cascade_name: spec.name.clone(),
        inputs: spec.inputs.clone(),
        reductions,
    })
}

fn substitute_group(expr: &Expr, vars: &[String], value: f64) -> Expr {
    let constant = Expr::constant(value);
    vars.iter()
        .fold(expr.clone(), |acc, v| acc.substitute(v, &constant))
}

fn eval_at(expr: &Expr, input_vars: &[String], x0: f64, deps: &[String], d0: f64) -> Option<f64> {
    let mut env = Env::new();
    for v in input_vars {
        env.set(v.clone(), x0);
    }
    for v in deps {
        env.set(v.clone(), d0);
    }
    expr.eval(&env).ok()
}

fn is_invertible(combine: BinaryOp, value: f64) -> bool {
    match combine {
        BinaryOp::Add => value.is_finite(),
        BinaryOp::Mul => value.is_finite() && value != 0.0,
        // Max/Min never admit inverses; the repair mechanism would apply, but
        // Table 1 never selects them as ⊗ so this arm is unreachable in
        // practice. Treat any finite value as acceptable.
        BinaryOp::Max | BinaryOp::Min => value.is_finite(),
    }
}

fn apply_inverse(combine: BinaryOp, expr: &Expr, f00: f64) -> Expr {
    match combine {
        BinaryOp::Add => expr.clone() - Expr::constant(f00),
        BinaryOp::Mul => expr.clone() / Expr::constant(f00),
        BinaryOp::Max | BinaryOp::Min => expr.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::ReductionSpec;
    use crate::patterns;
    use rf_algebra::ReduceOp;

    #[test]
    fn softmax_decomposition_matches_paper() {
        let plan = analyze_cascade(&patterns::safe_softmax()).unwrap();
        let m = &plan.reductions[0];
        assert!(m.is_independent());
        assert_eq!(m.combine, BinaryOp::Add);

        let t = &plan.reductions[1];
        assert_eq!(t.combine, BinaryOp::Mul);
        assert_eq!(t.g.to_string(), "exp(x)");
        assert_eq!(t.deps, vec!["m".to_string()]);
        // H(m) must behave as exp(-m): validate numerically.
        let env = Env::from_pairs([("m", 2.0)]);
        let h = t.h.eval(&env).unwrap();
        assert!((h - (-2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn quant_gemm_decomposition_matches_paper_case_study() {
        // §3.4: G2(a, w) = MAX * a * w is recovered up to constant placement;
        // H2(m) behaves as MAX/m up to the same constant. Validate G ⊗ H = F.
        let plan = analyze_cascade(&patterns::fp8_quant_gemm()).unwrap();
        let c = &plan.reductions[1];
        assert_eq!(c.combine, BinaryOp::Mul);
        let env = Env::from_pairs([("a", 0.5), ("w", 2.0), ("m", 4.0)]);
        let f = c.map.eval(&env).unwrap();
        let g = c.g.eval(&env).unwrap();
        let h = c.h.eval(&env).unwrap();
        assert!((f - g * h).abs() < 1e-9 * (1.0 + f.abs()));
    }

    #[test]
    fn attention_row_is_fully_fusable() {
        let plan = analyze_cascade(&patterns::attention_row()).unwrap();
        assert_eq!(plan.len(), 3);
        assert_eq!(
            plan.reductions[2].deps,
            vec!["m".to_string(), "t".to_string()]
        );
    }

    #[test]
    fn sum_sum_internal_pattern_is_fusable() {
        let plan = analyze_cascade(&patterns::sum_sum()).unwrap();
        assert_eq!(plan.reductions[1].combine, BinaryOp::Mul);
    }

    #[test]
    fn variance_style_dependency_is_rejected() {
        let err = analyze_cascade(&patterns::non_decomposable_variance()).unwrap_err();
        assert!(matches!(err, AcrfError::NotDecomposable { .. }));
        assert!(err.to_string().contains("not decomposable"));
    }

    #[test]
    fn invalid_cascade_is_reported() {
        let bad = CascadeSpec {
            name: "bad".into(),
            inputs: vec![],
            reductions: vec![ReductionSpec::new("a", ReduceOp::Sum, Expr::var("x"))],
        };
        assert!(matches!(
            analyze_cascade(&bad).unwrap_err(),
            AcrfError::Cascade(_)
        ));
    }

    #[test]
    fn fixed_point_skips_singular_candidates() {
        // F = x / d: d0 = 0 gives a non-finite F(x0, d0) and must be skipped,
        // falling through to d0 = 1 which succeeds.
        let spec = CascadeSpec::new(
            "scaled_sum",
            vec!["x".to_string()],
            vec![
                ReductionSpec::new("s", ReduceOp::Sum, Expr::var("x")),
                ReductionSpec::new("q", ReduceOp::Sum, Expr::var("x") / Expr::var("s")),
            ],
        )
        .unwrap();
        let plan = analyze_cascade(&spec).unwrap();
        let q = &plan.reductions[1];
        let env = Env::from_pairs([("x", 3.0), ("s", 2.0)]);
        let f = q.map.eval(&env).unwrap();
        let gh = q.g.eval(&env).unwrap() * q.h.eval(&env).unwrap();
        assert!((f - gh).abs() < 1e-9);
    }

    #[test]
    fn error_display_variants() {
        let e = AcrfError::NoValidFixedPoint {
            reduction: "r".into(),
        };
        assert!(e.to_string().contains("fixed point"));
        let e = AcrfError::LawViolation {
            reduction: "r".into(),
        };
        assert!(e.to_string().contains("laws"));
    }
}
