//! Numeric evaluators for cascaded reductions.
//!
//! Three evaluation strategies are provided, all producing the same results
//! (they are cross-checked in the tests and by `rf-codegen`):
//!
//! * [`NaiveCascadeEvaluator`] — evaluates the definition (Eq. 1) directly:
//!   one full pass over the input per reduction, in dependency order. This is
//!   the *chain of reduction trees* and serves as the correctness oracle.
//! * [`IncrementalEvaluator`] — a single streaming pass that maintains one
//!   running value per reduction and applies the incremental update rules
//!   (Eq. 15–16). This is the generalised online-softmax; FlashAttention's
//!   update is the instantiation for the attention cascade.
//! * [`FusedTreeEvaluator`] — evaluates the fused reduction tree (Eq. 11) for
//!   an arbitrary [`TreeShape`]: level-1 segments are processed incrementally
//!   and higher levels merge same-level partial results with the correction
//!   term `d^{k-1} ⊗ H(D^{k-1})^{-1} ⊗ H(D^k)`.
//!
//! Non-invertible `H` values are handled with the reversibility repair of
//! Appendix A.1 (substituting the identity element), implemented by
//! [`rf_algebra::BinaryOp::inverse_or_repair`].

use rf_algebra::ReduceOp;
use rf_expr::{Env, Expr};

use crate::cascade::{CascadeInput, CascadeSpec};
use crate::plan::{FusedReduction, FusionPlan};
use crate::tree::TreeShape;

/// Evaluates the cascade definition directly (multi-pass, unfused).
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveCascadeEvaluator;

impl NaiveCascadeEvaluator {
    /// Creates a naive evaluator.
    pub fn new() -> Self {
        NaiveCascadeEvaluator
    }

    /// Evaluates every reduction of `spec` over `input`, returning the final
    /// results `d_1..d_I` in order.
    ///
    /// # Panics
    ///
    /// Panics if a map function references a variable that is neither an input
    /// column nor an earlier result (validated specs never do), or if the
    /// input is empty.
    pub fn evaluate(&self, spec: &CascadeSpec, input: &CascadeInput) -> Vec<f64> {
        assert!(!input.is_empty(), "cascade input must not be empty");
        let mut results: Vec<f64> = Vec::with_capacity(spec.reductions.len());
        let mut env = Env::new();
        for reduction in &spec.reductions {
            let op = reduction.reduce.binary_op();
            let mut acc = op.identity();
            for l in 0..input.len() {
                input.bind_position(l, &mut env);
                for (prev, value) in spec.reductions.iter().zip(&results) {
                    env.set(prev.name.clone(), *value);
                }
                let mapped = reduction
                    .map
                    .eval(&env)
                    .expect("validated cascade evaluates without unbound variables");
                acc = op.apply(acc, mapped);
            }
            results.push(acc);
        }
        results
    }
}

/// Streaming single-pass evaluation using the incremental form (Eq. 15–16).
#[derive(Debug, Clone, Copy, Default)]
pub struct IncrementalEvaluator;

impl IncrementalEvaluator {
    /// Creates an incremental evaluator.
    pub fn new() -> Self {
        IncrementalEvaluator
    }

    /// Evaluates the fused cascade over the full input in a single pass.
    pub fn evaluate(&self, plan: &FusionPlan, input: &CascadeInput) -> Vec<f64> {
        self.evaluate_range(plan, input, 0, input.len())
    }

    /// Evaluates the fused cascade over the positions `[start, end)`, producing
    /// the first-level segment outputs `d^1_{i,j}` of Eq. 6–7.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds, or if the plan contains
    /// a `Prod` reduction (the generic evaluators do not implement the
    /// log-transform; `Prod` never occurs in the paper's workloads).
    pub fn evaluate_range(
        &self,
        plan: &FusionPlan,
        input: &CascadeInput,
        start: usize,
        end: usize,
    ) -> Vec<f64> {
        assert!(
            start < end && end <= input.len(),
            "invalid segment range [{start}, {end})"
        );
        assert_prod_free(plan);
        let n = plan.reductions.len();
        let mut states: Vec<f64> = plan.reductions.iter().map(|r| r.plus.identity()).collect();
        let mut env = Env::new();
        for l in start..end {
            input.bind_position(l, &mut env);
            let prev_states = states.clone();
            for i in 0..n {
                let r = &plan.reductions[i];
                let g_val = eval_with_states(&r.g, &env, plan, &states);
                if r.is_independent() {
                    states[i] = r.plus.apply(states[i], g_val);
                    continue;
                }
                let h_prev = eval_h(r, plan, &prev_states);
                let h_cur = eval_h(r, plan, &states);
                let corrected = r.combine.apply(
                    r.combine
                        .apply(states[i], r.combine.inverse_or_repair(h_prev)),
                    h_cur,
                );
                let incoming = r.combine.apply(g_val, h_cur);
                states[i] = r.plus.apply(corrected, incoming);
            }
        }
        states
    }

    /// Merges same-level partial results of several segments into the next
    /// level's output (Eq. 11). `partials[j][i]` is reduction `i`'s partial
    /// result for segment `j`.
    ///
    /// # Panics
    ///
    /// Panics if `partials` is empty or the inner vectors do not match the
    /// plan's reduction count.
    pub fn merge_partials(&self, plan: &FusionPlan, partials: &[Vec<f64>]) -> Vec<f64> {
        assert!(!partials.is_empty(), "cannot merge zero segments");
        assert!(
            partials.iter().all(|p| p.len() == plan.reductions.len()),
            "each partial must contain one value per reduction"
        );
        assert_prod_free(plan);
        let n = plan.reductions.len();
        let mut merged: Vec<f64> = plan.reductions.iter().map(|r| r.plus.identity()).collect();
        for i in 0..n {
            let r = &plan.reductions[i];
            let mut acc = r.plus.identity();
            for segment in partials {
                let contribution = if r.is_independent() {
                    segment[i]
                } else {
                    let h_seg = eval_h(r, plan, segment);
                    let h_merged = eval_h(r, plan, &merged);
                    r.combine.apply(
                        r.combine
                            .apply(segment[i], r.combine.inverse_or_repair(h_seg)),
                        h_merged,
                    )
                };
                acc = r.plus.apply(acc, contribution);
            }
            merged[i] = acc;
        }
        merged
    }
}

/// Evaluates the fused reduction tree for an arbitrary [`TreeShape`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FusedTreeEvaluator;

impl FusedTreeEvaluator {
    /// Creates a fused-tree evaluator.
    pub fn new() -> Self {
        FusedTreeEvaluator
    }

    /// Evaluates the cascade over `input` using the level structure of `shape`.
    ///
    /// # Panics
    ///
    /// Panics if `shape.input_len()` does not match the input length.
    pub fn evaluate(&self, plan: &FusionPlan, input: &CascadeInput, shape: &TreeShape) -> Vec<f64> {
        assert_eq!(
            shape.input_len(),
            input.len(),
            "tree shape input length must match the cascade input length"
        );
        let incremental = IncrementalEvaluator::new();

        // Level 1: evaluate each segment over its slice of the input.
        let level1_segments = shape.segments(1);
        let seg_len = shape.segment_len(1);
        let mut current: Vec<Vec<f64>> = (0..level1_segments)
            .map(|j| incremental.evaluate_range(plan, input, j * seg_len, (j + 1) * seg_len))
            .collect();

        // Levels 2..=K: merge groups of same-level partials.
        for k in 2..=shape.depth() {
            let group = shape.segment_len(k);
            current = current
                .chunks(group)
                .map(|chunk| incremental.merge_partials(plan, chunk))
                .collect();
        }
        assert_eq!(
            current.len(),
            1,
            "the final level must produce a single segment"
        );
        current.pop().unwrap()
    }
}

fn assert_prod_free(plan: &FusionPlan) {
    assert!(
        plan.reductions.iter().all(|r| r.reduce != ReduceOp::Prod),
        "the generic fused evaluators do not support Prod reductions (rewrite as a log-sum first)"
    );
}

fn eval_h(reduction: &FusedReduction, plan: &FusionPlan, states: &[f64]) -> f64 {
    let mut env = Env::new();
    bind_states(plan, states, &mut env);
    reduction
        .h
        .eval(&env)
        .expect("H only references earlier reduction results")
}

fn eval_with_states(expr: &Expr, input_env: &Env, plan: &FusionPlan, states: &[f64]) -> f64 {
    let mut env = input_env.clone();
    bind_states(plan, states, &mut env);
    expr.eval(&env)
        .expect("G only references input variables and earlier reduction results")
}

fn bind_states(plan: &FusionPlan, states: &[f64], env: &mut Env) {
    for (reduction, value) in plan.reductions.iter().zip(states) {
        env.set(reduction.name.clone(), *value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acrf::analyze_cascade;
    use crate::patterns;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-7 * (1.0 + a.abs().max(b.abs()))
    }

    fn assert_all_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(close(*x, *y), "mismatch: {a:?} vs {b:?}");
        }
    }

    fn random_input(names: &[&str], len: usize, seed: u64) -> CascadeInput {
        let mut rng = StdRng::seed_from_u64(seed);
        CascadeInput::new(
            names
                .iter()
                .map(|n| {
                    (
                        n.to_string(),
                        (0..len).map(|_| rng.gen_range(-2.0..2.0)).collect(),
                    )
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn softmax_incremental_matches_naive() {
        let spec = patterns::safe_softmax();
        let plan = analyze_cascade(&spec).unwrap();
        let input = random_input(&["x"], 128, 1);
        let naive = NaiveCascadeEvaluator::new().evaluate(&spec, &input);
        let fused = IncrementalEvaluator::new().evaluate(&plan, &input);
        assert_all_close(&naive, &fused);
    }

    #[test]
    fn attention_tree_matches_naive_across_shapes() {
        let spec = patterns::attention_row();
        let plan = analyze_cascade(&spec).unwrap();
        let input = random_input(&["p", "v"], 256, 2);
        let naive = NaiveCascadeEvaluator::new().evaluate(&spec, &input);
        for shape in [
            TreeShape::flat(256),
            TreeShape::new(vec![256, 8, 1]).unwrap(),
            TreeShape::new(vec![256, 64, 8, 1]).unwrap(),
            TreeShape::new(vec![256, 128, 32, 4, 1]).unwrap(),
        ] {
            let fused = FusedTreeEvaluator::new().evaluate(&plan, &input, &shape);
            assert_all_close(&naive, &fused);
        }
    }

    #[test]
    fn quant_gemm_incremental_matches_naive() {
        let spec = patterns::fp8_quant_gemm();
        let plan = analyze_cascade(&spec).unwrap();
        let input = random_input(&["a", "w"], 192, 3);
        let naive = NaiveCascadeEvaluator::new().evaluate(&spec, &input);
        let fused = IncrementalEvaluator::new().evaluate(&plan, &input);
        assert_all_close(&naive, &fused);
    }

    #[test]
    fn sum_sum_tree_matches_naive() {
        let spec = patterns::sum_sum();
        let plan = analyze_cascade(&spec).unwrap();
        let input = random_input(&["x1", "x2"], 64, 4);
        let naive = NaiveCascadeEvaluator::new().evaluate(&spec, &input);
        let shape = TreeShape::new(vec![64, 8, 1]).unwrap();
        let fused = FusedTreeEvaluator::new().evaluate(&plan, &input, &shape);
        assert_all_close(&naive, &fused);
    }

    #[test]
    fn merge_partials_matches_single_pass() {
        let spec = patterns::safe_softmax();
        let plan = analyze_cascade(&spec).unwrap();
        let input = random_input(&["x"], 96, 5);
        let inc = IncrementalEvaluator::new();
        let whole = inc.evaluate(&plan, &input);
        let parts: Vec<Vec<f64>> = (0..3)
            .map(|j| inc.evaluate_range(&plan, &input, j * 32, (j + 1) * 32))
            .collect();
        let merged = inc.merge_partials(&plan, &parts);
        assert_all_close(&whole, &merged);
    }

    #[test]
    #[should_panic(expected = "invalid segment range")]
    fn empty_range_panics() {
        let plan = analyze_cascade(&patterns::safe_softmax()).unwrap();
        let input = CascadeInput::single("x", vec![1.0, 2.0]);
        IncrementalEvaluator::new().evaluate_range(&plan, &input, 1, 1);
    }

    #[test]
    #[should_panic(expected = "must match the cascade input length")]
    fn mismatched_shape_panics() {
        let plan = analyze_cascade(&patterns::safe_softmax()).unwrap();
        let input = CascadeInput::single("x", vec![1.0, 2.0, 3.0, 4.0]);
        let shape = TreeShape::flat(8);
        FusedTreeEvaluator::new().evaluate(&plan, &input, &shape);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_all_fusable_patterns_agree(
            seed in 0u64..1_000,
            len_pow in 3u32..8,
        ) {
            let len = 1usize << len_pow;
            for spec in patterns::all_fusable() {
                let plan = analyze_cascade(&spec).unwrap();
                let names: Vec<&str> = spec.inputs.iter().map(|s| s.as_str()).collect();
                let input = random_input(&names, len, seed);
                let naive = NaiveCascadeEvaluator::new().evaluate(&spec, &input);
                let inc = IncrementalEvaluator::new().evaluate(&plan, &input);
                for (a, b) in naive.iter().zip(&inc) {
                    prop_assert!(close(*a, *b), "{}: naive={a} fused={b}", spec.name);
                }
                let shape = TreeShape::gpu_hierarchy(len, len / 2, len / 4, 2);
                let tree = FusedTreeEvaluator::new().evaluate(&plan, &input, &shape);
                for (a, b) in naive.iter().zip(&tree) {
                    prop_assert!(close(*a, *b), "{} (tree): naive={a} fused={b}", spec.name);
                }
            }
        }

        #[test]
        fn prop_merge_is_associative_in_grouping(
            seed in 0u64..1_000,
        ) {
            let spec = patterns::attention_row();
            let plan = analyze_cascade(&spec).unwrap();
            let input = random_input(&["p", "v"], 64, seed);
            let inc = IncrementalEvaluator::new();
            let parts: Vec<Vec<f64>> = (0..4)
                .map(|j| inc.evaluate_range(&plan, &input, j * 16, (j + 1) * 16))
                .collect();
            let flat = inc.merge_partials(&plan, &parts);
            let left = inc.merge_partials(&plan, &[
                inc.merge_partials(&plan, &parts[..2]),
                inc.merge_partials(&plan, &parts[2..]),
            ]);
            for (a, b) in flat.iter().zip(&left) {
                prop_assert!(close(*a, *b), "grouping changed the result: {a} vs {b}");
            }
        }
    }
}
