//! Reduction-tree shapes and the chain-of-trees execution model (§3.1.1–3.1.2).
//!
//! A reduction of length `L0` is organised into `K` levels with output lengths
//! `L0 > L1 > … > LK = 1`; level `k` partitions the `L_{k-1}` outputs of the
//! previous level into segments of length `L_{k-1}/L_k`. On a GPU the levels
//! map onto the execution hierarchy: `L1` = number of threads, `L2` = number
//! of warps, `L3` = number of CTAs, `L4 = 1` (§4.3).
//!
//! This module also provides the memory-access accounting used in Figure 7:
//! without fusion, the dependency result `d_K` of a preceding reduction must be
//! re-loaded `L0` times; with fusion at level `k`, only `L_k` times.

use std::fmt;

/// The shape of a reduction tree: the output length of every level, starting
/// with the input length `L0` and ending with `1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TreeShape {
    levels: Vec<usize>,
}

/// Errors from [`TreeShape::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeShapeError {
    /// Fewer than two levels were supplied (need at least `L0` and `LK = 1`).
    TooFewLevels,
    /// The final level length is not 1.
    LastLevelNotOne,
    /// Level lengths are not strictly decreasing.
    NotStrictlyDecreasing,
    /// A level length does not divide the previous level length.
    NotDivisible {
        /// Index of the offending level.
        level: usize,
    },
}

impl fmt::Display for TreeShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeShapeError::TooFewLevels => write!(f, "a tree shape needs at least L0 and LK = 1"),
            TreeShapeError::LastLevelNotOne => write!(f, "the last level length must be 1"),
            TreeShapeError::NotStrictlyDecreasing => {
                write!(f, "level lengths must strictly decrease")
            }
            TreeShapeError::NotDivisible { level } => {
                write!(
                    f,
                    "level {level} length must divide the previous level length"
                )
            }
        }
    }
}

impl std::error::Error for TreeShapeError {}

impl TreeShape {
    /// Creates a tree shape from the level lengths `[L0, L1, …, LK]`.
    ///
    /// # Errors
    ///
    /// Returns a [`TreeShapeError`] when the lengths are not strictly
    /// decreasing, do not end in 1, or fail the divisibility requirement of
    /// Eq. 2–3.
    pub fn new(levels: Vec<usize>) -> Result<Self, TreeShapeError> {
        if levels.len() < 2 {
            return Err(TreeShapeError::TooFewLevels);
        }
        if *levels.last().unwrap() != 1 {
            return Err(TreeShapeError::LastLevelNotOne);
        }
        for k in 1..levels.len() {
            if levels[k] >= levels[k - 1] {
                return Err(TreeShapeError::NotStrictlyDecreasing);
            }
            if !levels[k - 1].is_multiple_of(levels[k]) {
                return Err(TreeShapeError::NotDivisible { level: k });
            }
        }
        Ok(TreeShape { levels })
    }

    /// A flat two-level shape `[L0, 1]`: the whole input reduced by one segment.
    pub fn flat(l0: usize) -> Self {
        TreeShape::new(vec![l0.max(2), 1]).expect("flat shape is always valid")
    }

    /// The classic GPU four-level hierarchy of §4.3: `L1` threads, `L2` warps,
    /// `L3` CTAs, `L4 = 1`. Levels equal to or larger than the previous level
    /// are dropped so short inputs still produce a valid shape.
    pub fn gpu_hierarchy(l0: usize, threads: usize, warps: usize, ctas: usize) -> Self {
        let mut levels = vec![l0];
        for candidate in [threads, warps, ctas, 1usize] {
            let prev = *levels.last().unwrap();
            if candidate < prev && prev % candidate == 0 {
                levels.push(candidate);
            }
        }
        if *levels.last().unwrap() != 1 {
            levels.push(1);
        }
        TreeShape::new(levels).expect("gpu hierarchy construction yields a valid shape")
    }

    /// The level lengths `[L0, …, LK]`.
    pub fn levels(&self) -> &[usize] {
        &self.levels
    }

    /// The input length `L0`.
    pub fn input_len(&self) -> usize {
        self.levels[0]
    }

    /// The number of reduction levels `K` (excluding the input level).
    pub fn depth(&self) -> usize {
        self.levels.len() - 1
    }

    /// The segment length at level `k` (1-based): `L_{k-1} / L_k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds [`TreeShape::depth`].
    pub fn segment_len(&self, k: usize) -> usize {
        assert!(k >= 1 && k <= self.depth(), "level {k} out of range");
        self.levels[k - 1] / self.levels[k]
    }

    /// Number of output segments at level `k` (1-based), i.e. `L_k`.
    pub fn segments(&self, k: usize) -> usize {
        assert!(k >= 1 && k <= self.depth(), "level {k} out of range");
        self.levels[k]
    }

    /// Figure 7 accounting: the number of times the *final* result `d_K` of a
    /// preceding reduction must be loaded by a dependent reduction.
    ///
    /// * Without fusion, `F_i(·)` consumes `d_K` for every one of the `L0`
    ///   input positions.
    /// * With fusion at level `k`, the dependent reduction instead consumes
    ///   same-level partial results, and only the `L_k` segment outputs touch
    ///   the preceding reduction's value.
    pub fn dependency_loads(&self, fusion_level: Option<usize>) -> usize {
        match fusion_level {
            None => self.input_len(),
            Some(k) => {
                assert!(k >= 1 && k <= self.depth(), "level {k} out of range");
                self.levels[k]
            }
        }
    }

    /// Total number of input elements loaded from memory by a cascade of
    /// `num_reductions` reductions over `num_inputs` input vectors.
    ///
    /// Unfused, every reduction re-loads the full input; fused, the input is
    /// loaded exactly once (§3.2, Figure 3).
    pub fn input_loads(&self, num_reductions: usize, num_inputs: usize, fused: bool) -> usize {
        let once = self.input_len() * num_inputs;
        if fused {
            once
        } else {
            once * num_reductions
        }
    }

    /// The number of correction operations introduced by fusing at level `k`
    /// (§5.3): each of the `L_k` segment outputs of the dependent reduction
    /// must be corrected when the running dependency value changes.
    pub fn corrections_at_level(&self, k: usize) -> usize {
        assert!(k >= 1 && k <= self.depth(), "level {k} out of range");
        self.levels[k]
    }
}

impl fmt::Display for TreeShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.levels.iter().map(|l| l.to_string()).collect();
        write!(f, "[{}]", parts.join(" -> "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn valid_shape() {
        let shape = TreeShape::new(vec![1024, 128, 4, 1]).unwrap();
        assert_eq!(shape.input_len(), 1024);
        assert_eq!(shape.depth(), 3);
        assert_eq!(shape.segment_len(1), 8);
        assert_eq!(shape.segment_len(2), 32);
        assert_eq!(shape.segment_len(3), 4);
        assert_eq!(shape.segments(1), 128);
        assert_eq!(shape.to_string(), "[1024 -> 128 -> 4 -> 1]");
    }

    #[test]
    fn invalid_shapes_are_rejected() {
        assert_eq!(
            TreeShape::new(vec![8]).unwrap_err(),
            TreeShapeError::TooFewLevels
        );
        assert_eq!(
            TreeShape::new(vec![8, 2]).unwrap_err(),
            TreeShapeError::LastLevelNotOne
        );
        assert_eq!(
            TreeShape::new(vec![8, 8, 1]).unwrap_err(),
            TreeShapeError::NotStrictlyDecreasing
        );
        assert_eq!(
            TreeShape::new(vec![8, 3, 1]).unwrap_err(),
            TreeShapeError::NotDivisible { level: 1 }
        );
        assert!(TreeShape::new(vec![8, 3, 1])
            .unwrap_err()
            .to_string()
            .contains("divide"));
    }

    #[test]
    fn flat_and_gpu_hierarchy_constructors() {
        assert_eq!(TreeShape::flat(512).levels(), &[512, 1]);
        let shape = TreeShape::gpu_hierarchy(4096, 256, 8, 4);
        assert_eq!(shape.levels(), &[4096, 256, 8, 4, 1]);
        // Short inputs drop unusable levels instead of failing.
        let small = TreeShape::gpu_hierarchy(16, 256, 8, 4);
        assert_eq!(small.levels(), &[16, 8, 4, 1]);
    }

    #[test]
    fn figure7_dependency_loads() {
        let shape = TreeShape::new(vec![4096, 256, 8, 1]).unwrap();
        assert_eq!(shape.dependency_loads(None), 4096);
        assert_eq!(shape.dependency_loads(Some(1)), 256);
        assert_eq!(shape.dependency_loads(Some(2)), 8);
        assert_eq!(shape.dependency_loads(Some(3)), 1);
        // Fusing always reduces dependency traffic.
        for k in 1..=shape.depth() {
            assert!(shape.dependency_loads(Some(k)) < shape.dependency_loads(None));
        }
    }

    #[test]
    fn input_loads_accounting() {
        let shape = TreeShape::flat(1024);
        assert_eq!(shape.input_loads(3, 2, false), 3 * 1024 * 2);
        assert_eq!(shape.input_loads(3, 2, true), 1024 * 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn segment_len_out_of_range_panics() {
        TreeShape::flat(64).segment_len(2);
    }

    proptest! {
        #[test]
        fn prop_gpu_hierarchy_is_always_valid(
            l0_pow in 4u32..14,
            threads_pow in 1u32..10,
            warps_pow in 0u32..6,
            ctas_pow in 0u32..4,
        ) {
            let shape = TreeShape::gpu_hierarchy(
                1usize << l0_pow,
                1usize << threads_pow,
                1usize << warps_pow,
                1usize << ctas_pow,
            );
            prop_assert_eq!(*shape.levels().last().unwrap(), 1);
            for k in 1..shape.levels().len() {
                prop_assert!(shape.levels()[k] < shape.levels()[k - 1]);
                prop_assert_eq!(shape.levels()[k - 1] % shape.levels()[k], 0);
            }
        }
    }
}
