//! The formal model of cascaded reductions (§3.1, Eq. 1).
//!
//! A cascade operates on `M` input vectors `X_1..X_M`, each of length `L0`.
//! The `i`-th reduction produces a scalar
//!
//! ```text
//! d_i = R_i_{l=1..L0} F_i(X[l], D_i)            (Eq. 1)
//! ```
//!
//! where `X[l]` is the tuple of the `M` input elements at position `l` and
//! `D_i = {d_1, …, d_{i-1}}` are the results of the preceding reductions.
//! Vector-valued outputs (e.g. the attention output row) are modelled as one
//! scalar reduction per output component sharing the same dependencies; the
//! batched kernels in `rf-kernels` handle the vectorised layouts.

use std::collections::BTreeSet;
use std::fmt;

use rf_algebra::ReduceOp;
use rf_expr::{Env, Expr};

/// One reduction in a cascade: the reduction operator `R_i` and the symbolic
/// map function `F_i(X[l], D_i)`.
///
/// The map function is an [`Expr`] over the cascade's input variables and the
/// *names* of earlier reductions (its dependency variables).
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionSpec {
    /// Name of the reduction result; later reductions refer to it by this name.
    pub name: String,
    /// The reduction operator `R_i`.
    pub reduce: ReduceOp,
    /// The map function `F_i` as a symbolic expression.
    pub map: Expr,
}

impl ReductionSpec {
    /// Creates a new reduction specification.
    pub fn new(name: impl Into<String>, reduce: ReduceOp, map: Expr) -> Self {
        ReductionSpec {
            name: name.into(),
            reduce,
            map,
        }
    }
}

/// A full cascaded-reduction specification.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeSpec {
    /// Human-readable name of the pattern (e.g. `"safe_softmax"`).
    pub name: String,
    /// Names of the `M` per-position input variables (e.g. `["x"]`, `["p", "v"]`).
    pub inputs: Vec<String>,
    /// The reductions, in dependency order.
    pub reductions: Vec<ReductionSpec>,
}

/// Errors reported by [`CascadeSpec::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CascadeError {
    /// Two reductions (or a reduction and an input) share a name.
    DuplicateName(String),
    /// A map function references a variable that is neither an input nor an
    /// earlier reduction result.
    UnknownVariable {
        /// The reduction whose map function is invalid.
        reduction: String,
        /// The offending variable.
        variable: String,
    },
    /// The cascade has no reductions.
    Empty,
    /// The cascade has no inputs.
    NoInputs,
}

impl fmt::Display for CascadeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CascadeError::DuplicateName(n) => write!(f, "duplicate name `{n}` in cascade"),
            CascadeError::UnknownVariable { reduction, variable } => write!(
                f,
                "reduction `{reduction}` references unknown variable `{variable}` (forward dependencies are not allowed)"
            ),
            CascadeError::Empty => write!(f, "cascade has no reductions"),
            CascadeError::NoInputs => write!(f, "cascade has no input variables"),
        }
    }
}

impl std::error::Error for CascadeError {}

impl CascadeSpec {
    /// Creates a cascade and validates it.
    ///
    /// # Errors
    ///
    /// Returns a [`CascadeError`] if names collide, a map function references
    /// an unknown or forward variable, or the cascade is empty.
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<String>,
        reductions: Vec<ReductionSpec>,
    ) -> Result<Self, CascadeError> {
        let spec = CascadeSpec {
            name: name.into(),
            inputs,
            reductions,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Validates naming and dependency structure.
    pub fn validate(&self) -> Result<(), CascadeError> {
        if self.reductions.is_empty() {
            return Err(CascadeError::Empty);
        }
        if self.inputs.is_empty() {
            return Err(CascadeError::NoInputs);
        }
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for input in &self.inputs {
            if !seen.insert(input.as_str()) {
                return Err(CascadeError::DuplicateName(input.clone()));
            }
        }
        let mut available: BTreeSet<&str> = self.inputs.iter().map(|s| s.as_str()).collect();
        for reduction in &self.reductions {
            for var in reduction.map.free_vars() {
                if !available.contains(var.as_str()) {
                    return Err(CascadeError::UnknownVariable {
                        reduction: reduction.name.clone(),
                        variable: var,
                    });
                }
            }
            if !seen.insert(reduction.name.as_str()) {
                return Err(CascadeError::DuplicateName(reduction.name.clone()));
            }
            available.insert(reduction.name.as_str());
        }
        Ok(())
    }

    /// Number of reductions `I` in the cascade.
    pub fn len(&self) -> usize {
        self.reductions.len()
    }

    /// Whether the cascade has no reductions (never true for validated specs).
    pub fn is_empty(&self) -> bool {
        self.reductions.is_empty()
    }

    /// The dependency variables (names of earlier reductions) actually used by
    /// the `i`-th reduction's map function.
    pub fn dependencies_of(&self, i: usize) -> Vec<String> {
        let map = &self.reductions[i].map;
        self.reductions[..i]
            .iter()
            .filter(|r| map.depends_on(&r.name))
            .map(|r| r.name.clone())
            .collect()
    }

    /// Names of all reduction results, in order.
    pub fn result_names(&self) -> Vec<String> {
        self.reductions.iter().map(|r| r.name.clone()).collect()
    }
}

impl fmt::Display for CascadeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cascade {}({}):", self.name, self.inputs.join(", "))?;
        for r in &self.reductions {
            writeln!(f, "  {} = {} over l of {}", r.name, r.reduce, r.map)?;
        }
        Ok(())
    }
}

/// Column-major numeric input to a cascade: one column per input variable,
/// all of the same length `L0`.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeInput {
    columns: Vec<Vec<f64>>,
    names: Vec<String>,
}

impl CascadeInput {
    /// Builds an input from `(name, column)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the columns have different lengths or no columns are given.
    pub fn new<I, S>(columns: I) -> Self
    where
        I: IntoIterator<Item = (S, Vec<f64>)>,
        S: Into<String>,
    {
        let mut names = Vec::new();
        let mut cols = Vec::new();
        for (name, col) in columns {
            names.push(name.into());
            cols.push(col);
        }
        assert!(
            !cols.is_empty(),
            "cascade input must have at least one column"
        );
        let len = cols[0].len();
        assert!(
            cols.iter().all(|c| c.len() == len),
            "all cascade input columns must have the same length"
        );
        CascadeInput {
            columns: cols,
            names,
        }
    }

    /// Convenience constructor for a single-input cascade.
    pub fn single(name: impl Into<String>, column: Vec<f64>) -> Self {
        CascadeInput::new([(name.into(), column)])
    }

    /// Sequence length `L0`.
    pub fn len(&self) -> usize {
        self.columns[0].len()
    }

    /// Whether the input has zero positions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The input variable names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The column for a given input variable, if present.
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|idx| self.columns[idx].as_slice())
    }

    /// Binds the input variables at position `l` into an environment.
    pub fn bind_position(&self, l: usize, env: &mut Env) {
        for (name, col) in self.names.iter().zip(&self.columns) {
            env.set(name.clone(), col[l]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_algebra::ReduceOp;

    fn softmax_spec() -> CascadeSpec {
        let x = Expr::var("x");
        CascadeSpec::new(
            "softmax",
            vec!["x".to_string()],
            vec![
                ReductionSpec::new("m", ReduceOp::Max, x.clone()),
                ReductionSpec::new("t", ReduceOp::Sum, (x - Expr::var("m")).exp()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn valid_cascade_passes_validation() {
        let spec = softmax_spec();
        assert_eq!(spec.len(), 2);
        assert_eq!(spec.dependencies_of(0), Vec::<String>::new());
        assert_eq!(spec.dependencies_of(1), vec!["m".to_string()]);
        assert_eq!(spec.result_names(), vec!["m".to_string(), "t".to_string()]);
    }

    #[test]
    fn forward_dependency_is_rejected() {
        let err = CascadeSpec::new(
            "bad",
            vec!["x".to_string()],
            vec![
                ReductionSpec::new("a", ReduceOp::Sum, Expr::var("x") * Expr::var("b")),
                ReductionSpec::new("b", ReduceOp::Sum, Expr::var("x")),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, CascadeError::UnknownVariable { .. }));
        assert!(err.to_string().contains("forward dependencies"));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let err = CascadeSpec::new(
            "bad",
            vec!["x".to_string()],
            vec![ReductionSpec::new("x", ReduceOp::Sum, Expr::var("x"))],
        )
        .unwrap_err();
        assert_eq!(err, CascadeError::DuplicateName("x".to_string()));
    }

    #[test]
    fn empty_cascade_is_rejected() {
        let err = CascadeSpec::new("bad", vec!["x".to_string()], vec![]).unwrap_err();
        assert_eq!(err, CascadeError::Empty);
        let err = CascadeSpec::new(
            "bad",
            vec![],
            vec![ReductionSpec::new("a", ReduceOp::Sum, Expr::constant(1.0))],
        )
        .unwrap_err();
        assert_eq!(err, CascadeError::NoInputs);
    }

    #[test]
    fn display_lists_reductions() {
        let s = softmax_spec().to_string();
        assert!(s.contains("m = max over l of x"));
        assert!(s.contains("t = sum over l of exp((x - m))"));
    }

    #[test]
    fn cascade_input_accessors() {
        let input = CascadeInput::new([("x", vec![1.0, 2.0]), ("y", vec![3.0, 4.0])]);
        assert_eq!(input.len(), 2);
        assert!(!input.is_empty());
        assert_eq!(input.column("y"), Some(&[3.0, 4.0][..]));
        assert_eq!(input.column("z"), None);
        let mut env = Env::new();
        input.bind_position(1, &mut env);
        assert_eq!(env.get("x"), Some(2.0));
        assert_eq!(env.get("y"), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_column_lengths_panic() {
        CascadeInput::new([("x", vec![1.0]), ("y", vec![1.0, 2.0])]);
    }
}
