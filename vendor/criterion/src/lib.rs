//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the subset of the Criterion 0.5 API the `rf-bench` benchmark
//! suite uses: [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology (simplified vs real Criterion, same shape): a short warm-up,
//! then timed batches that grow until the measurement window is filled, and a
//! mean-per-iteration report on stdout. There is no statistical analysis, no
//! HTML report and no `target/criterion` state; the goal is that `cargo bench`
//! compiles, runs quickly and prints comparable per-benchmark timings.

use std::time::{Duration, Instant};

/// Re-export of the standard black box so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `function name / parameter` (e.g. `unfused/1024`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Mean wall-clock time per iteration measured by the last `iter` call.
    mean: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: a few iterations so lazy initialisation and cache effects
        // do not dominate the first timed batch.
        for _ in 0..3 {
            black_box(routine());
        }
        // Timed batches: double the batch size until one batch fills the
        // measurement window, then report mean time per iteration.
        let window = Duration::from_millis(40);
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= window || batch >= (1 << 20) {
                self.mean = elapsed / (batch as u32).max(1);
                return;
            }
            batch *= 2;
        }
    }
}

/// A named collection of related benchmarks, printed under a common prefix.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        println!("{}/{:<40} {:>14.3?}/iter", self.name, id, bencher.mean);
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.id.clone();
        self.run_one(&name, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        let name = group_name.into();
        println!("\n-- group: {name}");
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id);
        group.bench_function("base", f);
        group.finish();
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_nonzero_mean() {
        let mut group = Criterion::default();
        let mut group = group.benchmark_group("shim");
        group.bench_function("spin", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("unfused", 1024);
        assert_eq!(id.id, "unfused/1024");
    }
}
