//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the subset of proptest used by the workspace's property tests:
//!
//! * numeric range strategies (`-100.0f64..100.0`, `1usize..8`, …),
//! * tuple strategies, [`prop::sample::select`], [`prop::collection::vec`],
//! * [`strategy::Strategy`] combinators (`prop_map`, `prop_recursive`), [`prop_oneof!`],
//! * the [`proptest!`] macro with optional `#![proptest_config(..)]` header,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Differences from real proptest, deliberate for an offline test shim:
//! cases are generated from a fixed seed (fully deterministic across runs and
//! machines) and failing cases are reported without shrinking.

use std::rc::Rc;

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Mirror of `proptest::test_runner::Config` — only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// `prop_assert!`/`prop_assert_eq!` failed; the test fails.
        Fail(String),
    }

    /// Drives the per-case RNG. Deterministic: seeded per test from a fixed
    /// constant so failures reproduce across runs and machines.
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        pub fn new(_config: &Config) -> Self {
            TestRunner {
                rng: StdRng::seed_from_u64(0x0052_EDF0_5E12),
            }
        }

        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

pub use test_runner::Config as ProptestConfig;

pub mod strategy {
    use super::Rc;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of random values, mirroring `proptest::strategy::Strategy`.
    ///
    /// The real trait produces shrinkable value trees; this shim produces the
    /// values directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Recursive strategy: up to `depth` levels of `recurse` wrapped
        /// around `self` as the leaf. The `_desired_size` and
        /// `_expected_branch_size` knobs of real proptest are accepted and
        /// ignored; depth alone bounds the generated values here.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut level = leaf.clone();
            for _ in 0..depth {
                // Each level either bottoms out at a leaf or recurses one
                // step deeper; the 50/50 split keeps expected size bounded.
                level = union(vec![leaf.clone(), recurse(level).boxed()]);
            }
            level
        }
    }

    /// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!` backend).
    pub fn union<T>(alternatives: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T>
    where
        T: 'static,
    {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union { alternatives }.boxed()
    }

    struct Union<T> {
        alternatives: Vec<BoxedStrategy<T>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.alternatives.len());
            self.alternatives[i].generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(f64, usize, u64, u32, i64, i32);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// The `prop::` namespace (`prop::sample::select`, `prop::collection::vec`).
pub mod prop {
    pub mod sample {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Uniformly selects one of the given values.
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut StdRng) -> T {
                self.0[rng.gen_range(0..self.0.len())].clone()
            }
        }

        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select() needs at least one value");
            Select(values)
        }
    }

    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Length specification for [`vec()`]: a range or an exact size.
        pub trait SizeRange {
            fn pick(&self, rng: &mut StdRng) -> usize;
        }

        impl SizeRange for core::ops::Range<usize> {
            fn pick(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeRange for core::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut StdRng) -> usize {
                *self
            }
        }

        /// Vector of values from `element`, with a length drawn from `size`.
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }
    }
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs != rhs {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {:?} != {:?}", lhs, rhs),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs != rhs {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(::core::stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// The `proptest!` test-definition macro.
///
/// Each generated `#[test]` runs `config.cases` deterministic cases. A
/// `prop_assume!` rejection skips the case; a `prop_assert!` failure panics
/// with the case number (no shrinking in this shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(&config);
            for case in 0..config.cases {
                $(
                    let strat = $strat;
                    let $arg = $crate::strategy::Strategy::generate(&strat, runner.rng());
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        ::core::panic!("proptest case #{case} failed: {msg}");
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = f64> {
        -10.0f64..10.0
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_tuples(x in small(), (a, b) in (0usize..10, 1u32..5)) {
            prop_assert!((-10.0..10.0).contains(&x));
            prop_assert!(a < 10);
            prop_assert!((1..5).contains(&b));
        }

        #[test]
        fn collections_and_select(
            v in prop::collection::vec(-1.0f64..1.0, 1..16),
            pick in prop::sample::select(vec![2, 3, 5, 7]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 16);
            prop_assert!([2, 3, 5, 7].contains(&pick));
        }

        #[test]
        fn assume_rejects(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn oneof_and_recursive_generate() {
        let leaf = prop_oneof![(0.0f64..1.0).prop_map(|v| v), (5.0f64..6.0).prop_map(|v| v)];
        let nested = leaf.prop_recursive(3, 16, 2, |inner| inner.prop_map(|v| v + 10.0));
        let mut runner = crate::test_runner::TestRunner::new(&ProptestConfig::default());
        for _ in 0..100 {
            let v = nested.generate(runner.rng());
            assert!((0.0..40.0).contains(&v), "v={v}");
        }
    }
}
