//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the (small) subset of the `rand 0.8` API the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic PRNG (SplitMix64 core),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over `Range<f64>` / `RangeInclusive<f64>` and the
//!   integer ranges used by tests.
//!
//! Determinism matters more than statistical quality here: every consumer
//! seeds explicitly and uses the values as reproducible test data.

pub mod rngs {
    /// Deterministic PRNG with the same role as `rand::rngs::StdRng`.
    ///
    /// Internally a SplitMix64 sequence: passes basic equidistribution needs
    /// of synthetic-data generation and is trivially seedable from a `u64`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixed point and decorrelate small seeds.
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_u64(seed)
        }
    }
}

/// Core random-source trait: everything derives from a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding trait mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high-quality bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, i64, i32);

/// User-facing trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(-2.0..2.0), b.gen_range(-2.0..2.0));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-4.0..4.0);
            assert!((-4.0..4.0).contains(&x));
            let y: f64 = rng.gen_range(1.0..=2.0);
            assert!((1.0..=2.0).contains(&y));
            let n: usize = rng.gen_range(0..10usize);
            assert!(n < 10);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        assert_ne!(xs, ys);
    }
}
