//! Differential correctness harness for the tile-program VM.
//!
//! The central claim of the compile-and-execute pipeline: **tuning choices
//! change cost, never results**. For every workload family and any feasible
//! [`TuningPoint`], interpreting the fully-bound tile program on the
//! `rf_tile::exec` VM must agree with the unfused reference kernels — and
//! with itself across tuning points — within the family's numeric tolerance.
//!
//! Three layers of evidence:
//!
//! 1. a deterministic sweep of hand-picked tuning points (degenerate tiles,
//!    odd sizes, heavy segmenting) per family, checked against
//!    [`execute_reference`];
//! 2. a proptest sampling arbitrary feasible points, asserting both
//!    reference agreement and invariance against a canonical point's output;
//! 3. an `rf-tir` cross-check: the scalar loop-nest interpreter executes the
//!    unfused softmax/variance IR and must reproduce the VM's numbers.
//!
//! Tolerances are per family. Everything except quant is tight (`1e-9`
//! damped-relative): tiling only re-associates exact `f64` reductions. FP8
//! quant + GEMM quantises early tiles under a provisional scale (Eq. 21–22),
//! so across tile sizes its results move within the quantisation noise floor
//! — the same behaviour the hand-written fused kernel exhibits — and are
//! compared against an absolute bound of 5% of the output peak.

use std::collections::HashMap;

use proptest::prelude::*;
use redfuser::codegen::{compile_workload, executable_program, TuningPoint, Workload};
use redfuser::gpusim::{GpuArch, KernelProfile};
use redfuser::runtime::{execute_reference, Request, RequestInput, RequestOutput};
use redfuser::tile::exec;
use redfuser::workloads::{
    inertia_tiny, mha_tiny, mla_tiny, moe_tiny, quant_tiny, random_matrix, random_vec,
    variance_tiny,
};

/// Damped-relative tolerance for the exactly-reassociative families.
const TIGHT_TOL: f64 = 1e-9;

/// Absolute noise floor for FP8 quant + GEMM, as a fraction of the reference
/// output's peak magnitude.
const QUANT_NOISE: f64 = 0.05;

fn point(block_rows: usize, block_axis: usize, segments: u32) -> TuningPoint {
    TuningPoint {
        block_rows,
        block_axis,
        threads: 128,
        pipeline_depth: 2,
        segments,
    }
}

/// Hand-picked tuning points covering the degenerate corners: unit tiles,
/// non-power-of-two tiles, tile sizes past the shape (clamped), one segment
/// per element.
fn sweep_points() -> Vec<TuningPoint> {
    vec![
        point(1, 1, 1),
        point(3, 5, 2),
        point(16, 32, 4),
        point(128, 128, 1),
        point(64, 7, 8),
        point(2, 256, 16),
    ]
}

/// One request per workload family, with deterministic tensors.
fn family_requests() -> Vec<Request> {
    let mha = mha_tiny();
    let mla = mla_tiny();
    let moe = moe_tiny();
    let quant = quant_tiny();
    let var = variance_tiny();
    let inertia = inertia_tiny();
    vec![
        Request::softmax(random_matrix(6, 96, 1, -4.0, 4.0)),
        Request::new(
            Workload::Mha(mha.clone()),
            RequestInput::Attention {
                q: random_matrix(mha.q, mha.hd, 2, -1.0, 1.0),
                k: random_matrix(mha.kv, mha.hd, 3, -1.0, 1.0),
                v: random_matrix(mha.kv, mha.hd, 4, -1.0, 1.0),
            },
        )
        .unwrap(),
        Request::new(
            Workload::Mla(mla.clone()),
            RequestInput::Attention {
                q: random_matrix(1, mla.qk_dim(), 5, -1.0, 1.0),
                k: random_matrix(mla.kv, mla.qk_dim(), 6, -1.0, 1.0),
                v: random_matrix(mla.kv, mla.hd, 7, -1.0, 1.0),
            },
        )
        .unwrap(),
        Request::new(
            Workload::Moe(moe.clone()),
            RequestInput::Routing {
                x: random_matrix(9, moe.hd, 8, -1.0, 1.0),
                w: random_matrix(moe.hd, moe.en, 9, -1.0, 1.0),
            },
        )
        .unwrap(),
        Request::new(
            Workload::Quant(quant.clone()),
            RequestInput::QuantGemm {
                a: random_matrix(5, quant.k, 10, -2.0, 2.0),
                w: random_matrix(quant.k, quant.n, 11, -1.0, 1.0),
            },
        )
        .unwrap(),
        Request::new(
            Workload::Variance(var.clone()),
            RequestInput::Rows(random_matrix(4, var.l, 12, -3.0, 3.0)),
        )
        .unwrap(),
        Request::new(
            Workload::Inertia(inertia.clone()),
            RequestInput::Inertia {
                masses: random_vec(64, 13, 0.1, 2.0),
                positions: random_matrix(64, inertia.dim, 14, -2.0, 2.0),
            },
        )
        .unwrap(),
    ]
}

/// Interprets the bound program for `workload` at `point` over the request's
/// tensors, asserting the point launches feasibly on the given architecture.
fn run_at_point(request: &Request, tuning: &TuningPoint, arch: &GpuArch) -> RequestOutput {
    let program = executable_program(&request.workload, tuning);
    let profile = KernelProfile::from_tile_program(&program);
    assert!(
        profile.fits(arch),
        "{} at {tuning:?} must be launch-feasible on {}",
        request.workload.name(),
        arch.name
    );
    let output = exec::execute(&program, &request.input.as_exec())
        .expect("bound program executes over validated tensors");
    RequestOutput::from_exec(output)
}

/// Family-aware comparison: tight damped-relative everywhere except quant,
/// which is held to the FP8 provisional-scale noise floor.
fn assert_family_close(workload: &Workload, actual: &RequestOutput, expected: &RequestOutput) {
    match workload {
        Workload::Quant(_) => {
            let (RequestOutput::Matrix(a), RequestOutput::Matrix(e)) = (actual, expected) else {
                panic!("quant outputs are matrices");
            };
            let peak = e.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs()));
            let diff = a.max_abs_diff(e);
            assert!(
                diff <= QUANT_NOISE * peak + 1e-9,
                "quant diff {diff} exceeds the noise floor ({peak} peak)"
            );
        }
        _ => {
            assert!(
                actual.approx_eq(expected, TIGHT_TOL),
                "{}: VM output diverged from reference",
                workload.name()
            );
        }
    }
}

#[test]
fn vm_matches_reference_for_every_family_across_tuning_points() {
    let arch = GpuArch::a10();
    for request in family_requests() {
        let reference = execute_reference(&request.workload, &request.input);
        let mut distinct_points = 0;
        for tuning in sweep_points() {
            let served = run_at_point(&request, &tuning, &arch);
            assert_family_close(&request.workload, &served, &reference);
            distinct_points += 1;
        }
        assert!(
            distinct_points >= 3,
            "each family must be proven on at least 3 tuning points"
        );
    }
}

#[test]
fn compiled_kernels_run_and_match_reference_on_every_arch() {
    // The end-to-end path the engine serves: compile (auto-tuned point),
    // interpret the kernel's own program, compare to the oracle.
    for arch in [GpuArch::a10(), GpuArch::h800()] {
        for request in family_requests() {
            let kernel = compile_workload(&request.workload, &arch);
            let program = kernel.program.as_ref().expect("every kernel has a program");
            assert!(
                program.binding.is_some(),
                "{}: program must be fully bound",
                kernel.name
            );
            let served = RequestOutput::from_exec(
                kernel
                    .run(&request.input.as_exec())
                    .expect("compiled kernel executes"),
            );
            let reference = execute_reference(&request.workload, &request.input);
            assert_family_close(&request.workload, &served, &reference);
        }
    }
}

#[test]
fn tir_interpreter_cross_checks_the_scalar_workloads() {
    // Softmax: the scalar loop-nest IR interpreted by rf-tir must reproduce
    // the VM's probabilities row by row.
    let rows = random_matrix(4, 48, 21, -3.0, 3.0);
    let workload = Workload::Softmax { rows: 4, len: 48 };
    let program = executable_program(&workload, &point(2, 7, 3));
    let exec::ExecOutput::Matrix(vm_probs) =
        exec::execute(&program, &exec::ExecInput::Rows(&rows)).unwrap()
    else {
        panic!("softmax returns a matrix");
    };
    let tir_softmax = redfuser::tir::builder::unfused_softmax(48);
    let interp = redfuser::tir::Interpreter::new();
    for r in 0..rows.rows() {
        let inputs = HashMap::from([("x".to_string(), rows.row(r).to_vec())]);
        let out = interp.run(&tir_softmax, &inputs).expect("tir softmax runs");
        let (max, sum) = (out["m"][0], out["t"][0]);
        for (j, &x) in rows.row(r).iter().enumerate() {
            let tir_prob = (x - max).exp() / sum;
            let vm_prob = vm_probs.get(r, j);
            assert!(
                (tir_prob - vm_prob).abs() <= TIGHT_TOL * (1.0 + tir_prob.abs()),
                "row {r} col {j}: tir {tir_prob} vs vm {vm_prob}"
            );
        }
    }

    // Variance: a two-reduction sum / sum-of-squares loop nest in the same
    // scalar IR, finalised with the closed form the VM's epilogue uses.
    use redfuser::algebra::BinaryOp;
    use redfuser::tir::{BufferDecl, Stmt, TirExpr, TirFunction};
    let len = 40;
    let batch = random_matrix(3, len, 22, -2.0, 2.0);
    let x = || TirExpr::load1("x", "l");
    let sum_loop = |buffer: &str, value: TirExpr| Stmt::For {
        var: "l".into(),
        start: 0,
        extent: len,
        body: vec![Stmt::Update {
            buffer: buffer.into(),
            indices: vec![],
            op: BinaryOp::Add,
            value,
        }],
    };
    let tir_variance = TirFunction {
        name: "unfused_variance".into(),
        buffers: vec![
            BufferDecl::input("x", vec![len]),
            BufferDecl::output("s", vec![], 0.0),
            BufferDecl::output("ss", vec![], 0.0),
        ],
        body: vec![
            sum_loop("s", x()),
            sum_loop(
                "ss",
                TirExpr::Binary(BinaryOp::Mul, Box::new(x()), Box::new(x())),
            ),
        ],
    };
    let workload = Workload::Variance(redfuser::workloads::VarianceConfig {
        name: "xcheck",
        bs: 3,
        l: len,
    });
    let program = executable_program(&workload, &point(1, 9, 2));
    let exec::ExecOutput::Values(vm_vars) =
        exec::execute(&program, &exec::ExecInput::Rows(&batch)).unwrap()
    else {
        panic!("variance returns values");
    };
    for (r, &vm_var) in vm_vars.iter().enumerate() {
        let inputs = HashMap::from([("x".to_string(), batch.row(r).to_vec())]);
        let out = interp
            .run(&tir_variance, &inputs)
            .expect("tir variance runs");
        let n = len as f64;
        let mean = out["s"][0] / n;
        let tir_var = (out["ss"][0] / n - mean * mean).max(0.0);
        assert!(
            (tir_var - vm_var).abs() <= TIGHT_TOL * (1.0 + tir_var),
            "row {r}: tir {tir_var} vs vm {vm_var}"
        );
    }
}

/// Strategy over raw tuning points; clamping inside `executable_program`
/// makes every sampled point lowerable, and the harness additionally asserts
/// launch feasibility on the A10 before trusting a sample.
fn any_point() -> impl Strategy<Value = TuningPoint> {
    (
        1usize..=160,
        1usize..=300,
        prop::sample::select(vec![128u32, 256]),
        1u32..=3,
        1u32..=16,
    )
        .prop_map(
            |(block_rows, block_axis, threads, pipeline_depth, segments)| TuningPoint {
                block_rows,
                block_axis,
                threads,
                pipeline_depth,
                segments,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For each tiny workload config, `CompiledKernel::run`-equivalent
    /// execution is invariant across arbitrary feasible tuning points: the
    /// sampled point's output matches both the unfused reference and the
    /// canonical point's output within the family tolerance.
    #[test]
    fn prop_vm_output_is_invariant_across_feasible_points(tuning in any_point(), seed in 0u64..64) {
        let arch = GpuArch::a10();
        let canonical = point(128, 128, 1);
        let moe = moe_tiny();
        let var = variance_tiny();
        let requests = vec![
            Request::softmax(random_matrix(3, 64, seed, -3.0, 3.0)),
            Request::new(
                Workload::Moe(moe.clone()),
                RequestInput::Routing {
                    x: random_matrix(4, moe.hd, seed + 1, -1.0, 1.0),
                    w: random_matrix(moe.hd, moe.en, seed + 2, -1.0, 1.0),
                },
            )
            .unwrap(),
            Request::new(
                Workload::Variance(var.clone()),
                RequestInput::Rows(random_matrix(2, var.l, seed + 3, -2.0, 2.0)),
            )
            .unwrap(),
        ];
        for request in requests {
            let sampled = run_at_point(&request, &tuning, &arch);
            let reference = execute_reference(&request.workload, &request.input);
            assert_family_close(&request.workload, &sampled, &reference);
            let baseline = run_at_point(&request, &canonical, &arch);
            prop_assert!(
                sampled.approx_eq(&baseline, TIGHT_TOL),
                "{}: output moved between tuning points {tuning:?} and {canonical:?}",
                request.workload.name()
            );
        }
    }

    /// Attention specifically: arbitrary point vs the flash/naive oracles.
    #[test]
    fn prop_attention_vm_is_invariant(tuning in any_point(), seed in 0u64..64) {
        let arch = GpuArch::a10();
        let mha = mha_tiny();
        let request = Request::new(
            Workload::Mha(mha.clone()),
            RequestInput::Attention {
                q: random_matrix(mha.q, mha.hd, seed, -1.0, 1.0),
                k: random_matrix(mha.kv, mha.hd, seed + 1, -1.0, 1.0),
                v: random_matrix(mha.kv, mha.hd, seed + 2, -1.0, 1.0),
            },
        )
        .unwrap();
        let sampled = run_at_point(&request, &tuning, &arch);
        let reference = execute_reference(&request.workload, &request.input);
        prop_assert!(sampled.approx_eq(&reference, TIGHT_TOL));
    }

    /// Quant specifically: arbitrary point stays within the FP8 noise floor
    /// of the reference, and single-tile points match it exactly.
    #[test]
    fn prop_quant_vm_stays_within_the_noise_floor(tuning in any_point(), seed in 0u64..64) {
        let arch = GpuArch::a10();
        let quant = quant_tiny();
        let request = Request::new(
            Workload::Quant(quant.clone()),
            RequestInput::QuantGemm {
                a: random_matrix(3, quant.k, seed, -2.0, 2.0),
                w: random_matrix(quant.k, quant.n, seed + 1, -1.0, 1.0),
            },
        )
        .unwrap();
        let sampled = run_at_point(&request, &tuning, &arch);
        let reference = execute_reference(&request.workload, &request.input);
        assert_family_close(&request.workload, &sampled, &reference);
        if tuning.block_axis >= quant.k && tuning.segments <= 1 {
            // Whole row in one tile: the VM performs the identical roundings
            // as the unfused oracle and must match bit-for-bit.
            let (RequestOutput::Matrix(a), RequestOutput::Matrix(e)) = (&sampled, &reference)
            else {
                panic!("quant outputs are matrices")
            };
            prop_assert!(a.max_abs_diff(e) == 0.0);
        }
    }
}
