//! Cross-crate integration tests: the full RedFuser pipeline from scalar loop
//! nests through ACRF, fused-kernel generation, tile-level lowering and the
//! analytical GPU model, cross-checked against the reference CPU kernels.

use std::collections::HashMap;

use redfuser::baselines::{mha_op_list, moe_op_list, quant_op_list, CompilerBaseline};
use redfuser::codegen::{compile_workload, Workload};
use redfuser::fusion::{
    acrf::analyze_cascade, patterns, CascadeInput, FusedTreeEvaluator, IncrementalEvaluator,
    NaiveCascadeEvaluator, TreeShape,
};
use redfuser::gpusim::{sequence_latency, GpuArch};
use redfuser::kernels::attention::{attention_naive, flash_attention, flash_decoding};
use redfuser::tir::{builder, detect_cascade, generate_fused, Interpreter};
use redfuser::workloads::{mha_configs, moe_configs, quant_configs, random_vec, Matrix};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-7 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn tir_to_fused_kernel_matches_reference_for_every_builder() {
    // Front end end-to-end: builder loop nest -> detection -> ACRF -> fused
    // scalar kernel -> interpreter, compared against the unfused loop nest.
    type Case = (redfuser::tir::TirFunction, Vec<(&'static str, (f64, f64))>);
    let cases: Vec<Case> = vec![
        (builder::unfused_softmax(96), vec![("x", (-3.0, 3.0))]),
        (
            builder::unfused_attention_row(128),
            vec![("p", (-2.0, 2.0)), ("v", (-2.0, 2.0))],
        ),
        (
            builder::unfused_quant_gemm_row(80),
            vec![("a", (-2.0, 2.0)), ("w", (-1.0, 1.0))],
        ),
        (
            builder::unfused_sum_sum(64),
            vec![("x1", (0.5, 2.0)), ("x2", (-1.0, 1.0))],
        ),
    ];
    let interp = Interpreter::new();
    for (unfused, ranges) in cases {
        let detected = detect_cascade(&unfused).unwrap_or_else(|e| panic!("{}: {e}", unfused.name));
        let plan =
            analyze_cascade(&detected.cascade).unwrap_or_else(|e| panic!("{}: {e}", unfused.name));
        let fused = generate_fused(&plan, &detected);
        let inputs: HashMap<String, Vec<f64>> = ranges
            .iter()
            .enumerate()
            .map(|(i, (name, (lo, hi)))| {
                (
                    name.to_string(),
                    random_vec(detected.extent, 100 + i as u64, *lo, *hi),
                )
            })
            .collect();
        let expected = interp.run(&unfused, &inputs).unwrap();
        let actual = interp.run(&fused, &inputs).unwrap();
        for (name, value) in &expected {
            assert!(
                close(value[0], actual[name][0]),
                "{}: output {name} mismatch {} vs {}",
                unfused.name,
                value[0],
                actual[name][0]
            );
        }
    }
}

#[test]
fn generic_evaluators_agree_with_dedicated_attention_kernels() {
    // The symbolic attention-row cascade and the dense FlashAttention kernel
    // compute the same output component.
    let kv = 64;
    let hd = 8;
    let q = Matrix::random(1, hd, 3, -1.0, 1.0);
    let k = Matrix::random(kv, hd, 4, -1.0, 1.0);
    let v = Matrix::random(kv, hd, 5, -1.0, 1.0);
    let naive = attention_naive(&q, &k, &v, 1.0);

    let spec = patterns::attention_row();
    let plan = analyze_cascade(&spec).unwrap();
    for component in 0..hd {
        let scores: Vec<f64> = (0..kv)
            .map(|j| (0..hd).map(|d| q.get(0, d) * k.get(j, d)).sum())
            .collect();
        let values: Vec<f64> = (0..kv).map(|j| v.get(j, component)).collect();
        let input = CascadeInput::new([("p".to_string(), scores), ("v".to_string(), values)]);
        let result = IncrementalEvaluator::new().evaluate(&plan, &input);
        assert!(
            close(result[2], naive.get(0, component)),
            "component {component}"
        );
    }
}

#[test]
fn tree_evaluation_is_invariant_across_gpu_like_shapes() {
    let spec = patterns::fp8_quant_gemm();
    let plan = analyze_cascade(&spec).unwrap();
    let input = CascadeInput::new([
        ("a".to_string(), random_vec(512, 21, -2.0, 2.0)),
        ("w".to_string(), random_vec(512, 22, -1.0, 1.0)),
    ]);
    let reference = NaiveCascadeEvaluator::new().evaluate(&spec, &input);
    for shape in [
        TreeShape::flat(512),
        TreeShape::new(vec![512, 64, 8, 1]).unwrap(),
        TreeShape::gpu_hierarchy(512, 128, 16, 4),
    ] {
        let result = FusedTreeEvaluator::new().evaluate(&plan, &input, &shape);
        for (a, b) in reference.iter().zip(&result) {
            assert!(close(*a, *b), "{shape}: {a} vs {b}");
        }
    }
}

#[test]
fn flash_decoding_split_counts_agree_with_flash_attention() {
    let q = Matrix::random(1, 32, 11, -1.0, 1.0);
    let k = Matrix::random(256, 32, 12, -1.0, 1.0);
    let v = Matrix::random(256, 32, 13, -1.0, 1.0);
    let scale = 1.0 / (32f64).sqrt();
    let single = flash_attention(&q, &k, &v, scale, 64);
    for splits in [2, 4, 8] {
        let multi = flash_decoding(&q, &k, &v, scale, splits, 64);
        assert!(single.max_abs_diff(&multi) < 1e-9, "splits = {splits}");
    }
}

#[test]
fn headline_speedups_have_the_papers_shape() {
    // Figure 5 orderings: RedFuser beats both general-purpose compilers on
    // every workload family and is within a small factor of hand-optimized
    // kernels on attention.
    let a10 = GpuArch::a10();
    let h800 = GpuArch::h800();

    let mha = &mha_configs()[1];
    let fused = compile_workload(&Workload::Mha(mha.clone()), &a10);
    let ops = mha_op_list(mha);
    let eager = sequence_latency(&a10, &CompilerBaseline::PyTorchEager.kernels(&ops));
    let dynamo = sequence_latency(&a10, &CompilerBaseline::Dynamo.kernels(&ops));
    let tvm = sequence_latency(&a10, &CompilerBaseline::Tvm.kernels(&ops));
    assert!(fused.latency_us < dynamo && fused.latency_us < tvm && fused.latency_us < eager);
    assert!(
        eager / fused.latency_us >= 2.0,
        "fused attention should be at least ~2x over eager"
    );

    let moe = &moe_configs()[6];
    let fused = compile_workload(&Workload::Moe(moe.clone()), &a10);
    let dynamo = sequence_latency(&a10, &CompilerBaseline::Dynamo.kernels(&moe_op_list(moe)));
    assert!(fused.latency_us < dynamo);

    let quant = &quant_configs()[5];
    let fused = compile_workload(&Workload::Quant(quant.clone()), &h800);
    let tvm = sequence_latency(&h800, &CompilerBaseline::Tvm.kernels(&quant_op_list(quant)));
    let dynamo = sequence_latency(
        &h800,
        &CompilerBaseline::Dynamo.kernels(&quant_op_list(quant)),
    );
    assert!(fused.latency_us < dynamo && fused.latency_us < tvm);
    assert!(
        tvm / fused.latency_us > dynamo / fused.latency_us,
        "TVM must trail Dynamo on Quant+GEMM"
    );
}

#[test]
fn every_fig5_workload_compiles_on_every_platform() {
    for arch in GpuArch::all() {
        for workload in [
            Workload::Mha(mha_configs()[0].clone()),
            Workload::Mla(redfuser::workloads::mla_configs()[0].clone()),
            Workload::Moe(moe_configs()[0].clone()),
            Workload::Quant(quant_configs()[0].clone()),
            Workload::Variance(redfuser::workloads::variance_configs()[0].clone()),
            Workload::Inertia(redfuser::workloads::inertia_configs()[0].clone()),
        ] {
            let compiled = compile_workload(&workload, &arch);
            assert!(
                compiled.latency_us.is_finite() && compiled.latency_us > 0.0,
                "{} on {}",
                compiled.name,
                arch.name
            );
        }
    }
}
