//! Observability integration tests: the engine's telemetry must stay
//! consistent under concurrency and overload.
//!
//! Two properties matter beyond what the unit tests cover:
//!
//! 1. **Conservation** — with many threads submitting, shedding and
//!    completing at once, every submission is accounted for exactly once:
//!    per lane, `submitted == completed + failed + shed` after a drain.
//! 2. **Mid-flight safety** — `Engine::metrics()` is a point-in-time
//!    snapshot callers poll from monitoring threads; taking one while
//!    workers are mid-iteration must never panic and never show more
//!    completions than submissions.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use redfuser::gpusim::GpuArch;
use redfuser::runtime::{
    Engine, Priority, Request, RequestOutput, RuntimeConfig, RuntimeError, Submission, TraceConfig,
    TraceLevel, LANES,
};
use redfuser::trace::validate_chrome_trace;
use redfuser::workloads::random_matrix;

fn engine(workers: usize, max_in_flight: usize, trace: TraceConfig) -> Engine {
    let config = RuntimeConfig::builder()
        .workers(workers)
        .max_batch(4)
        .cache_capacity(16)
        .max_in_flight(max_in_flight)
        .trace(trace)
        .build()
        .expect("valid config");
    Engine::with_config(GpuArch::h800(), config)
}

/// Satellite: multi-threaded submit/shed/complete stress. Six client threads
/// flood a small budget across all three lanes while a monitor thread
/// hammers `metrics()`; afterwards every lane's ledger must balance.
#[test]
fn concurrent_submissions_balance_the_per_lane_ledger() {
    let engine = Arc::new(engine(2, 16, TraceConfig::histograms()));

    // A monitor thread polls snapshots mid-flight the whole time — this is
    // the "snapshot never panics" half of the test. Invariants that must
    // hold at *any* instant are asserted on every poll.
    let stop = Arc::new(AtomicBool::new(false));
    let monitor = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut polls = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snapshot = engine.metrics();
                assert!(snapshot.completed + snapshot.failed <= snapshot.submitted);
                // Lane counters are read before the global counter and each
                // submit bumps global-then-lane, so mid-flight the lane sum
                // can only trail the global figure, never lead it.
                let lane_submitted: u64 = snapshot.lanes.iter().map(|l| l.submitted).sum();
                assert!(lane_submitted <= snapshot.submitted);
                let _ = snapshot.report();
                polls += 1;
                thread::yield_now();
            }
            polls
        })
    };

    let clients: Vec<_> = (0..6u64)
        .map(|client| {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                let mut tickets = Vec::new();
                let mut shed = [0u64; LANES];
                for round in 0..48u64 {
                    let priority = Priority::ALL[(client + round) as usize % LANES];
                    let request =
                        Request::softmax(random_matrix(4, 64, client * 1000 + round, -1.0, 1.0));
                    match engine.submit(Submission::workload(request).with_priority(priority)) {
                        Ok(ticket) => tickets.push(ticket),
                        Err(RuntimeError::Overloaded { retry_hint, .. }) => {
                            assert!(retry_hint > std::time::Duration::ZERO);
                            shed[priority.lane()] += 1;
                        }
                        Err(other) => panic!("unexpected submit error: {other}"),
                    }
                }
                let mut completed = 0u64;
                for ticket in tickets {
                    ticket.wait().expect("admitted requests complete");
                    completed += 1;
                }
                (completed, shed)
            })
        })
        .collect();

    let mut client_completed = 0u64;
    let mut client_shed = [0u64; LANES];
    for client in clients {
        let (completed, shed) = client.join().expect("client thread succeeds");
        client_completed += completed;
        for (lane, count) in shed.iter().enumerate() {
            client_shed[lane] += count;
        }
    }
    engine.run_until_drained();
    stop.store(true, Ordering::Relaxed);
    let polls = monitor.join().expect("monitor thread succeeds");
    assert!(polls > 0, "the monitor must observe the run mid-flight");

    // The ledger: what clients saw must equal what the engine recorded,
    // globally and per lane. Arrivals conserve exactly — sheds are disjoint
    // from `submitted`, so `submitted + shed == completed + failed + shed`
    // collapses to `submitted == completed + failed` after a drain.
    let snapshot = engine.metrics();
    assert_eq!(snapshot.submitted, 6 * 48 - client_shed.iter().sum::<u64>());
    assert_eq!(snapshot.completed, client_completed);
    assert_eq!(snapshot.failed, 0);
    assert_eq!(snapshot.shed, client_shed.iter().sum::<u64>());
    for (lane, summary) in snapshot.lanes.iter().enumerate() {
        assert_eq!(
            summary.submitted + summary.shed,
            summary.completed + summary.failed + summary.shed,
            "lane {lane} arrivals must balance after a drain",
        );
        assert_eq!(summary.shed, client_shed[lane], "lane {lane} shed count");
    }
    // Histograms ran at the default level: the end-to-end stage saw every
    // completion.
    let e2e = snapshot
        .stages
        .iter()
        .find(|s| s.stage == "e2e")
        .expect("the e2e stage is always present");
    assert_eq!(e2e.wall.count, snapshot.completed);
}

/// Satellite: shed observability. A flood past a tiny budget must surface
/// retry hints and per-lane shed rates in the snapshot and the report.
#[test]
fn a_flood_surfaces_retry_hints_and_shed_rates() {
    let engine = engine(1, 4, TraceConfig::histograms());
    let mut admitted = Vec::new();
    let mut shed = 0u64;
    for seed in 0..96 {
        match engine.submit(Request::softmax(random_matrix(8, 256, seed, -1.0, 1.0))) {
            Ok(ticket) => admitted.push(ticket),
            Err(RuntimeError::Overloaded { retry_hint, source }) => {
                assert!(retry_hint > std::time::Duration::ZERO);
                assert!(source.in_flight >= source.budget);
                shed += 1;
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    assert!(shed > 0, "a 4-slot budget must shed under a 96-burst");
    engine.run_until_drained();
    for ticket in admitted {
        ticket.wait().expect("admitted requests complete");
    }

    let snapshot = engine.metrics();
    assert_eq!(snapshot.shed, shed);
    assert!(snapshot.shed_retry_last_us > 0.0);
    assert!(snapshot.shed_retry_mean_us > 0.0);
    let normal = &snapshot.lanes[Priority::Normal.lane()];
    assert_eq!(normal.shed, shed);
    assert!(normal.shed_rate() > 0.0 && normal.shed_rate() < 1.0);
    assert_eq!(snapshot.lanes[Priority::High.lane()].shed_rate(), 0.0);

    let report = snapshot.report();
    assert!(report.contains("shed retry hint"), "report:\n{report}");
    assert!(report.contains("shed rate"), "report:\n{report}");

    // The same counters flow into the Prometheus exposition.
    let exposition = snapshot.prometheus();
    assert!(exposition.contains("redfuser_requests_total{outcome=\"shed\"}"));
    assert!(exposition.contains("redfuser_shed_retry_hint_us"));
}

/// Instrumentation is observational only: the same requests served with
/// tracing fully off and with everything on (full spans, the tile-VM op
/// profiler, rolling telemetry windows) produce bit-identical outputs. With
/// tracing off, the profiler, calibration ledger and window ring all stay
/// empty — the off path never touches them.
#[test]
fn tracing_off_is_bit_identical_to_fully_instrumented_serving() {
    let serve = |trace: TraceConfig| -> (Engine, Vec<RequestOutput>) {
        let engine = engine(2, 256, trace);
        let tickets: Vec<_> = (0..24u64)
            .map(|seed| {
                engine
                    .submit(Request::softmax(random_matrix(4, 128, seed, -2.0, 2.0)))
                    .expect("a 256-slot budget admits 24 requests")
            })
            .collect();
        let outputs = tickets
            .into_iter()
            .map(|t| t.wait().expect("request completes").output)
            .collect();
        engine.run_until_drained();
        (engine, outputs)
    };
    let (dark, plain) = serve(TraceConfig::off());
    let (instrumented, traced) =
        serve(TraceConfig::full().with_profile(true).with_windows(100, 32));
    assert_eq!(
        plain, traced,
        "profiling and telemetry must not perturb results"
    );

    let snapshot = dark.metrics();
    assert!(
        snapshot.calibration.is_empty(),
        "off records no calibration"
    );
    assert!(snapshot.timeseries.latest_active().is_none());
    assert!(dark.op_profile().is_empty(), "off never profiles");

    let snapshot = instrumented.metrics();
    assert!(!snapshot.calibration.is_empty());
    assert!(snapshot.timeseries.latest_active().is_some());
    let folded = instrumented.op_profile().folded();
    redfuser::trace::validate_folded(&folded).expect("profile exports valid folded stacks");
    assert!(folded.contains(";softmax;"), "frames carry the class");
}

/// Full tracing under concurrency: the exported Chrome trace must stay
/// well-formed (correctly nested per track) when many workers and clients
/// interleave, and the histogram counters must agree with the span buffer's
/// view of the run.
#[test]
fn concurrent_full_tracing_exports_a_well_formed_trace() {
    let engine = Arc::new(engine(3, 256, TraceConfig::full()));
    let clients: Vec<_> = (0..4u64)
        .map(|client| {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                (0..16u64)
                    .map(|round| {
                        let priority = Priority::ALL[(client + round) as usize % LANES];
                        let request =
                            Request::softmax(random_matrix(4, 64, client * 100 + round, -1.0, 1.0));
                        engine
                            .submit(Submission::workload(request).with_priority(priority))
                            .expect("a 256-slot budget admits a 64-burst")
                    })
                    .map(|t| t.wait().expect("request completes"))
                    .fold(0usize, |served, _| served + 1)
            })
        })
        .collect();
    let served: usize = clients
        .into_iter()
        .map(|c| c.join().expect("client thread succeeds"))
        .sum();
    engine.run_until_drained();
    assert_eq!(served, 64);

    assert_eq!(engine.trace_collector().level(), TraceLevel::Full);
    let trace = engine.chrome_trace();
    let stats = validate_chrome_trace(&trace).expect("the trace document is well-formed");
    // Every request leaves at least queue + execute spans on its own track.
    assert_eq!(stats.request_tracks, 64);
    assert!(stats.spans >= 2 * 64);
    assert_eq!(engine.metrics().completed, 64);
}
