//! Integration tests pinning the qualitative claims of the paper's evaluation
//! (the "shape" of every table and figure), so regressions in any crate that
//! would change a conclusion are caught by `cargo test --workspace`.

use redfuser::algebra::{compatible_combine, BinaryOp, LawReport, ReduceOp};
use redfuser::codegen::{fusion_level_latency, incremental_sweep, FusionLevel};
use redfuser::fusion::{acrf::analyze_cascade, patterns, TreeShape};
use redfuser::gpusim::GpuArch;

#[test]
fn table1_pairs_satisfy_the_fusion_feasibility_conditions() {
    for reduce in ReduceOp::ALL {
        let report = LawReport::evaluate(reduce.fusion_plus(), compatible_combine(reduce));
        assert!(report.all_hold(), "{reduce}: {report:?}");
    }
    assert_eq!(compatible_combine(ReduceOp::Max), BinaryOp::Add);
    assert_eq!(compatible_combine(ReduceOp::Sum), BinaryOp::Mul);
}

#[test]
fn every_paper_pattern_is_fusable_and_flash_attention_is_a_special_case() {
    for spec in patterns::all_fusable() {
        let plan = analyze_cascade(&spec).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(plan.len(), spec.reductions.len());
    }
    // Appendix A.2.1: the attention cascade's incremental form is exactly the
    // FlashAttention online-softmax update (one correction per dependent
    // reduction: the sum and the output, but not the max).
    let plan = analyze_cascade(&patterns::attention_row()).unwrap();
    assert_eq!(plan.corrections_per_element(), 2);
}

#[test]
fn figure6a_all_levels_help_and_intra_block_wins() {
    let arch = GpuArch::a10();
    for size in [1024usize, 2048, 4096, 8192] {
        let reports: Vec<_> = FusionLevel::ALL
            .iter()
            .map(|&l| fusion_level_latency(&arch, 4096, size, l))
            .collect();
        for report in &reports {
            assert!(report.normalized > 1.0, "{} at {size}", report.level.name());
        }
        let best = reports
            .iter()
            .max_by(|a, b| a.normalized.partial_cmp(&b.normalized).unwrap())
            .unwrap();
        assert_eq!(best.level, FusionLevel::IntraBlock, "size {size}");
    }
}

#[test]
fn figure6b_incremental_mode_unlocks_configurations_non_incremental_cannot_reach() {
    let arch = GpuArch::a10();
    let points: Vec<usize> = vec![32, 64, 96, 112, 128, 256, 512];
    let sweep = incremental_sweep(&arch, 32 * 12 * 512, 512, 64, &points);
    // Non-incremental execution is only feasible for short per-CTA segments…
    assert!(sweep.iter().any(|p| p.non_incremental_us.is_some()));
    assert!(sweep.iter().any(|p| p.non_incremental_us.is_none()));
    // …and where it is feasible it is at least as fast (no corrections),
    // which is the §5.4 trade-off.
    for p in &sweep {
        if let Some(non_inc) = p.non_incremental_us {
            assert!(
                non_inc <= p.incremental_us * 1.001,
                "kv_per_cta = {}",
                p.kv_per_cta
            );
        }
    }
    // The whole sweep is reachable incrementally.
    assert!(sweep.iter().all(|p| p.incremental_us.is_finite()));
}

#[test]
fn figure7_fusion_reduces_dependency_and_input_traffic() {
    let shape = TreeShape::new(vec![8192, 256, 8, 1]).unwrap();
    let unfused = shape.dependency_loads(None);
    let mut previous = unfused;
    for k in 1..=shape.depth() {
        let fused = shape.dependency_loads(Some(k));
        assert!(
            fused < previous,
            "level {k} must reduce dependency loads further"
        );
        previous = fused;
    }
    assert_eq!(
        shape.input_loads(3, 1, true) * 3,
        shape.input_loads(3, 1, false)
    );
}

#[test]
fn table2_and_table3_configurations_match_the_paper() {
    use redfuser::workloads as w;
    assert_eq!(w::mha_configs().len(), 9);
    assert_eq!(w::mla_configs().len(), 9);
    assert_eq!(w::moe_configs().len(), 8);
    assert_eq!(w::quant_configs().len(), 10);
    assert_eq!(w::variance_configs().len(), 8);
    assert_eq!(w::inertia_configs().len(), 8);
    // Spot-check a few rows against the printed tables.
    let h7 = &w::mha_configs()[6];
    assert_eq!((h7.bs, h7.hn, h7.q, h7.kv, h7.hd), (32, 64, 1, 1024, 128));
    let r6 = &w::moe_configs()[5];
    assert_eq!((r6.s, r6.hd, r6.en, r6.topk), (2048, 2048, 64, 6));
    let q5 = &w::quant_configs()[4];
    assert_eq!((q5.m, q5.n, q5.k), (4096, 7168, 2048));
}
