//! End-to-end graph serving: differential tests against the whole-graph
//! unfused reference evaluator, and the negative-detection guarantees.
//!
//! The differential tests prove that graph serving through the unified
//! `Engine::submit` front door — partition into
//! fused regions + glue, compile each region through the plan cache,
//! interpret the tuned tile programs, thread intermediates — produces the
//! same numbers as evaluating every graph node with the unfused reference
//! kernels. The exactly-reassociative graphs are held to a tight relative
//! tolerance; the FP8-quantized MLP is held to the established provisional-
//! scale noise floor of the quant VM (see `tests/differential.rs`).
//!
//! The property tests embed the known non-fusable pattern (the dependent
//! two-pass variance) in larger graphs under random glue-op decorations of a
//! fusable softmax core, and check the partitioner never fuses it, never
//! drops a glue op and never reorders one.

use std::sync::Arc;

use proptest::prelude::*;
use rf_algebra::ReduceOp;
use rf_gpusim::GpuArch;
use rf_graph::partition::{partition, Step};
use rf_graph::{builders, MapOp, NodeId, Op, OpGraph, ZipOp};
use rf_runtime::{
    Engine, GraphStats, PlanCache, RequestOutput, RuntimeConfig, RuntimeError, Submission,
};
use rf_workloads::Matrix;

/// Damped-relative tolerance for the exactly-reassociative graphs: the fused
/// regions' VM execution is reassociation-exact against the references, so
/// only f64 rounding through the glue GEMMs remains.
const TIGHT_TOL: f64 = 1e-7;

/// Noise floor for the FP8-quantized MLP, as a fraction of the reference
/// output's peak magnitude. Matches `tests/differential.rs`: each quant
/// region's provisional per-tile scales may disagree with the final row
/// scale by up to ~5% of peak; the MLP cascades two such regions (the second
/// quantizes the first's already-noisy activations), so the compounded floor
/// is three single-region floors.
const QUANT_NOISE: f64 = 3.0 * 0.05;

fn max_damped_rel_diff(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs() / (1.0 + y.abs()))
        .fold(0.0, f64::max)
}

fn peak(m: &Matrix) -> f64 {
    m.as_slice().iter().fold(0.0f64, |acc, v| acc.max(v.abs()))
}

/// Serves a graph through the unified `Engine::submit` front door and
/// unwraps the tensor outputs plus the graph-serving stats.
fn serve_graph(
    engine: &Engine,
    graph: &OpGraph,
    inputs: &[(&str, Matrix)],
) -> Result<(Vec<Matrix>, GraphStats), RuntimeError> {
    let bindings: Vec<(String, Matrix)> = inputs
        .iter()
        .map(|(name, matrix)| (name.to_string(), matrix.clone()))
        .collect();
    let response = engine
        .submit(Submission::graph(Arc::new(graph.clone()), bindings))?
        .wait()?;
    let stats = response.graph.expect("graph submissions carry graph stats");
    let RequestOutput::Tensors(outputs) = response.output else {
        panic!("graph submissions produce tensors");
    };
    Ok((outputs, stats))
}

fn tiny_engine() -> Engine {
    Engine::with_config(
        GpuArch::a10(),
        RuntimeConfig::builder()
            .workers(1)
            .max_batch(4)
            .cache_capacity(16)
            .build()
            .expect("valid config"),
    )
}

#[test]
fn transformer_layer_graph_matches_the_unfused_reference() {
    let graph = builders::transformer_decoder_layer(8, 16, 32);
    let plan = partition(&graph);
    assert_eq!(plan.fused_regions(), 1, "the attention slice fuses");
    assert!(plan.glue_ops() >= 6, "projections and MLP stay glue");
    let engine = tiny_engine();
    for seed in [1, 42] {
        let inputs = builders::transformer_decoder_layer_inputs(8, 16, 32, seed);
        let (outputs, stats) = serve_graph(&engine, &graph, &inputs).unwrap();
        let reference = graph.evaluate(&inputs).unwrap();
        let diff = max_damped_rel_diff(&outputs[0], &reference[0]);
        assert!(diff <= TIGHT_TOL, "seed {seed}: diff {diff}");
        assert_eq!(stats.fused_regions, 1);
        assert!(stats.glue_ops >= 6);
    }
    let metrics = engine.metrics();
    assert_eq!(metrics.graphs_served, 2);
    assert_eq!(metrics.region_hits, 1, "second submission re-uses the plan");
}

#[test]
fn moe_block_graph_matches_the_unfused_reference() {
    let graph = builders::moe_block(6, 16, 4);
    let plan = partition(&graph);
    assert_eq!(plan.fused_regions(), 1, "the routing softmax fuses");
    assert!(
        plan.glue_ops() >= 6,
        "gate/expert GEMMs and combine stay glue"
    );
    let engine = tiny_engine();
    for seed in [7, 99] {
        let inputs = builders::moe_block_inputs(6, 16, 4, seed);
        let (outputs, _) = serve_graph(&engine, &graph, &inputs).unwrap();
        let reference = graph.evaluate(&inputs).unwrap();
        let diff = max_damped_rel_diff(&outputs[0], &reference[0]);
        assert!(diff <= TIGHT_TOL, "seed {seed}: diff {diff}");
    }
}

#[test]
fn quantized_mlp_graph_stays_within_the_fp8_noise_floor() {
    let graph = builders::quantized_mlp(4, 32, 16, 8);
    let plan = partition(&graph);
    assert_eq!(plan.fused_regions(), 2, "both quantized layers fuse");
    assert!(plan.glue_ops() >= 1, "the inter-layer relu stays glue");
    let engine = tiny_engine();
    for seed in [3, 77] {
        let inputs = builders::quantized_mlp_inputs(4, 32, 16, 8, seed);
        let (outputs, _) = serve_graph(&engine, &graph, &inputs).unwrap();
        let reference = graph.evaluate(&inputs).unwrap();
        let floor = QUANT_NOISE * peak(&reference[0]) + 1e-9;
        let diff = outputs[0].max_abs_diff(&reference[0]);
        assert!(
            diff <= floor,
            "seed {seed}: diff {diff} exceeds the noise floor {floor}"
        );
    }
}

#[test]
fn graph_serving_reports_missing_inputs() {
    let graph = builders::moe_block(4, 8, 4);
    let engine = tiny_engine();
    let err = serve_graph(&engine, &graph, &[]).unwrap_err();
    assert!(err.to_string().contains("not bound"));
}

/// Appends the dependent two-pass variance of `y` — the canonical
/// non-fusable cascade — returning its two reduction nodes and its result.
fn append_two_pass_variance(g: &mut OpGraph, y: NodeId) -> ([NodeId; 2], NodeId) {
    let len = g.node(y).shape.cols;
    let s1 = g.row_reduce(ReduceOp::Sum, y);
    let mu = g.scale(1.0 / len as f64, s1);
    let centered = g.zip(ZipOp::Sub, y, mu);
    let sq = g.map(MapOp::Square, centered);
    let v = g.row_reduce(ReduceOp::Sum, sq);
    let var = g.scale(1.0 / len as f64, v);
    ([s1, v], var)
}

/// Applies one elementwise glue decoration chosen by `choice`.
fn decorate(g: &mut OpGraph, node: NodeId, choice: u32) -> NodeId {
    match choice % 5 {
        0 => node,
        1 => g.scale(1.25, node),
        2 => g.shift(0.375, node),
        3 => g.map(MapOp::Relu, node),
        _ => g.map(MapOp::Neg, node),
    }
}

/// Builds a graph with a fusable softmax core and the embedded non-fusable
/// two-pass variance, decorated with random glue ops before and after both.
fn decorated_graph(decos: [u32; 4]) -> (OpGraph, [NodeId; 2]) {
    let mut g = OpGraph::new();
    let x = g.input("x", 4, 24);
    let y = g.input("y", 4, 16);
    let xd = decorate(&mut g, x, decos[0]);
    let probs = builders::append_softmax(&mut g, xd);
    let yd = decorate(&mut g, y, decos[1]);
    let (variance_reductions, var) = append_two_pass_variance(&mut g, yd);
    let probs_out = decorate(&mut g, probs, decos[2]);
    // A reshape glue consumer of the fused region's output.
    let reshaped = g.reshape(probs_out, 8, 12);
    let var_out = decorate(&mut g, var, decos[3]);
    g.mark_output(reshaped);
    g.mark_output(var_out);
    (g, variance_reductions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The partitioner never fuses the embedded non-fusable pattern, never
    /// drops a glue op, and never reorders one — under arbitrary glue-op
    /// decorations of the fusable core.
    #[test]
    fn prop_partitioner_never_fuses_the_non_fusable_pattern(
        decos in (0u32..5, 0u32..5, 0u32..5, 0u32..5),
    ) {
        let (graph, variance_reductions) =
            decorated_graph([decos.0, decos.1, decos.2, decos.3]);
        let plan = partition(&graph);
        // The softmax core always fuses; nothing else may.
        prop_assert_eq!(plan.fused_regions(), 1);
        let mut region_nodes: Vec<NodeId> = Vec::new();
        let mut glue_nodes: Vec<NodeId> = Vec::new();
        for step in &plan.steps {
            match step {
                Step::Region(r) => region_nodes.extend(&r.nodes),
                Step::Glue(id) => glue_nodes.push(*id),
            }
        }
        for vr in variance_reductions {
            prop_assert!(
                !region_nodes.contains(&vr),
                "non-fusable reduction {} landed in a fused region",
                vr
            );
        }
        // Glue ops are emitted in topological order (never reordered) …
        prop_assert!(glue_nodes.windows(2).all(|w| w[0] < w[1]));
        // … and every non-input node is planned exactly once (never dropped).
        let mut covered = region_nodes;
        covered.extend(&glue_nodes);
        covered.sort_unstable();
        covered.dedup();
        let expected: Vec<NodeId> = (0..graph.len())
            .filter(|&id| !matches!(graph.node(id).op, Op::Input { .. }))
            .collect();
        prop_assert_eq!(covered, expected);
    }

    /// The decorated graphs also *execute* correctly: the fused plan threads
    /// every glue value and matches the whole-graph unfused reference.
    #[test]
    fn prop_decorated_graphs_serve_correctly(
        decos in (0u32..5, 0u32..5, 0u32..5, 0u32..5),
        seed in 0u64..32,
    ) {
        let (graph, _) = decorated_graph([decos.0, decos.1, decos.2, decos.3]);
        let plan = partition(&graph);
        let arch = GpuArch::a10();
        let cache = PlanCache::new(arch.clone(), 8);
        let inputs = vec![
            ("x", rf_workloads::random_matrix(4, 24, seed, -2.0, 2.0)),
            ("y", rf_workloads::random_matrix(4, 16, seed + 100, -1.0, 1.0)),
        ];
        let served =
            rf_runtime::execute_graph_plan(&cache, &arch, None, &graph, &plan, &inputs).unwrap();
        let reference = graph.evaluate(&inputs).unwrap();
        for (got, want) in served.outputs.iter().zip(&reference) {
            prop_assert!(max_damped_rel_diff(got, want) <= TIGHT_TOL);
        }
    }
}
