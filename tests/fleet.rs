//! Multi-device fleet serving: the differential guarantee that a one-device
//! fleet behaves exactly like the single-arch engine, the routing-policy
//! invariants (sticky keys stay put, least-loaded never routes to a device
//! above the minimum backlog, row-sharded GEMMs merge back to the unsharded
//! numbers), and per-device ledger conservation under a concurrent flood.

use std::sync::Arc;

use rf_codegen::Workload;
use rf_gpusim::GpuArch;
use rf_graph::builders;
use rf_runtime::{
    DeviceSpec, Engine, FleetConfig, Request, RequestInput, RequestOutput, RoutingPolicy,
    RuntimeConfig, RuntimeError, Submission,
};
use rf_workloads::{
    inertia_tiny, mha_tiny, mla_tiny, moe_tiny, quant_tiny, random_matrix, variance_tiny, Matrix,
};

fn runtime_config(workers: usize, max_batch: usize, max_in_flight: usize) -> RuntimeConfig {
    RuntimeConfig::builder()
        .workers(workers)
        .max_batch(max_batch)
        .cache_capacity(32)
        .max_in_flight(max_in_flight)
        .build()
        .expect("valid config")
}

/// One deterministic request per workload family.
fn family_requests() -> Vec<Request> {
    let mha = mha_tiny();
    let mla = mla_tiny();
    let moe = moe_tiny();
    let quant = quant_tiny();
    let var = variance_tiny();
    let inertia = inertia_tiny();
    vec![
        Request::softmax(random_matrix(6, 96, 1, -4.0, 4.0)),
        Request::new(
            Workload::Mha(mha.clone()),
            RequestInput::Attention {
                q: random_matrix(mha.q, mha.hd, 2, -1.0, 1.0),
                k: random_matrix(mha.kv, mha.hd, 3, -1.0, 1.0),
                v: random_matrix(mha.kv, mha.hd, 4, -1.0, 1.0),
            },
        )
        .unwrap(),
        Request::new(
            Workload::Mla(mla.clone()),
            RequestInput::Attention {
                q: random_matrix(1, mla.qk_dim(), 5, -1.0, 1.0),
                k: random_matrix(mla.kv, mla.qk_dim(), 6, -1.0, 1.0),
                v: random_matrix(mla.kv, mla.hd, 7, -1.0, 1.0),
            },
        )
        .unwrap(),
        Request::new(
            Workload::Moe(moe.clone()),
            RequestInput::Routing {
                x: random_matrix(9, moe.hd, 8, -1.0, 1.0),
                w: random_matrix(moe.hd, moe.en, 9, -1.0, 1.0),
            },
        )
        .unwrap(),
        Request::new(
            Workload::Quant(quant.clone()),
            RequestInput::QuantGemm {
                a: random_matrix(5, quant.k, 10, -2.0, 2.0),
                w: random_matrix(quant.k, quant.n, 11, -1.0, 1.0),
            },
        )
        .unwrap(),
        Request::new(
            Workload::Variance(var.clone()),
            RequestInput::Rows(random_matrix(4, var.l, 12, -3.0, 3.0)),
        )
        .unwrap(),
        Request::new(
            Workload::Inertia(inertia.clone()),
            RequestInput::Inertia {
                masses: (0..64).map(|i| 0.1 + (i as f64) * 0.03).collect(),
                positions: random_matrix(64, inertia.dim, 14, -2.0, 2.0),
            },
        )
        .unwrap(),
    ]
}

fn serve_all(engine: &Engine, requests: &[Request]) -> Vec<RequestOutput> {
    let tickets: Vec<_> = requests
        .iter()
        .map(|r| engine.submit(r.clone()).expect("request admitted"))
        .collect();
    engine.run_until_drained();
    tickets
        .into_iter()
        .map(|t| t.wait().expect("request served").output)
        .collect()
}

/// The refactor's back-compat contract: an explicit one-device tile-VM fleet
/// is bit-identical to the plain single-arch engine on every workload family
/// and on graph serving — same outputs, same ledger, same cache behaviour.
#[test]
fn one_device_fleet_is_differentially_identical_to_the_plain_engine() {
    let requests = family_requests();
    let plain = Engine::with_config(GpuArch::a10(), runtime_config(2, 4, 1024));
    let fleet = Engine::with_fleet(FleetConfig {
        devices: vec![DeviceSpec::tile_vm(GpuArch::a10())],
        routing: RoutingPolicy::LeastLoaded,
        runtime: runtime_config(2, 4, 1024),
    });
    let plain_outputs = serve_all(&plain, &requests);
    let fleet_outputs = serve_all(&fleet, &requests);
    for ((request, a), b) in requests.iter().zip(&plain_outputs).zip(&fleet_outputs) {
        assert_eq!(a, b, "family {} diverged", request.workload.name());
    }

    // Graph serving goes through the same one-device path.
    let graph = Arc::new(builders::moe_block(4, 8, 4));
    let bindings: Vec<(String, Matrix)> = builders::moe_block_inputs(4, 8, 4, 3)
        .into_iter()
        .map(|(n, m)| (n.to_string(), m))
        .collect();
    let serve_graph = |engine: &Engine| {
        engine
            .submit(Submission::graph(Arc::clone(&graph), bindings.clone()))
            .unwrap()
            .wait()
            .unwrap()
    };
    let plain_graph = serve_graph(&plain);
    let fleet_graph = serve_graph(&fleet);
    assert_eq!(plain_graph.output, fleet_graph.output);
    assert_eq!(plain_graph.graph, fleet_graph.graph);

    // Identical ledgers and cache behaviour, not just identical numbers.
    let (pm, fm) = (plain.metrics(), fleet.metrics());
    assert_eq!(pm.submitted, fm.submitted);
    assert_eq!(pm.completed, fm.completed);
    assert_eq!(pm.failed, fm.failed);
    assert_eq!(pm.batches, fm.batches);
    assert_eq!(pm.cache.misses, fm.cache.misses);
    assert_eq!(pm.graphs_served, fm.graphs_served);
    // And the fleet engine reports exactly one device, serving everything.
    let snapshots = fleet.device_snapshots();
    assert_eq!(snapshots.len(), 1);
    assert_eq!(snapshots[0].metrics.completed, fm.completed);
}

/// Sticky routing: the same workload key always lands on the same device,
/// regardless of tensor values, so its plan cache and batches stay hot.
#[test]
fn sticky_routing_pins_each_key_to_one_device() {
    let engine = Engine::with_fleet(
        FleetConfig::homogeneous(GpuArch::a10(), 4, runtime_config(1, 4, 4096))
            .with_routing(RoutingPolicy::StickyByKey),
    );
    assert_eq!(engine.routing(), RoutingPolicy::StickyByKey);
    // Several distinct keys (shapes), several submissions per key with
    // different values.
    let shapes = [(2usize, 32usize), (4, 64), (8, 16), (3, 48), (5, 96)];
    let mut homes: Vec<Option<usize>> = vec![None; shapes.len()];
    for round in 0..6 {
        for (which, &(rows, cols)) in shapes.iter().enumerate() {
            let seed = (round * 100 + which) as u64;
            let response = engine
                .submit(Request::softmax(random_matrix(rows, cols, seed, -1.0, 1.0)))
                .unwrap()
                .wait()
                .unwrap();
            match homes[which] {
                None => homes[which] = Some(response.device),
                Some(home) => assert_eq!(
                    response.device, home,
                    "shape {rows}x{cols} moved devices between submissions"
                ),
            }
        }
    }
    engine.run_until_drained();
    // Per-device cache misses: each device compiled exactly the keys pinned
    // to it, once each — sticky keeps plan caches disjoint.
    let total_misses: u64 = engine
        .device_snapshots()
        .iter()
        .map(|d| d.metrics.cache.misses)
        .sum();
    assert_eq!(total_misses as usize, shapes.len());
}

/// Least-loaded routing: every submission goes to a device whose backlog, at
/// decision time, does not exceed the fleet minimum by more than one batch.
/// Cold per-request compiles keep real backlog on every device while a
/// single thread floods, so the depths observed around each submission
/// bracket the router's decision.
#[test]
fn least_loaded_never_routes_above_the_minimum_backlog() {
    let max_batch = 2usize;
    let engine = Engine::with_fleet(FleetConfig::homogeneous(
        GpuArch::a10(),
        4,
        runtime_config(1, max_batch, 4096),
    ));
    let mut tickets = Vec::new();
    for i in 0..32usize {
        let before: Vec<u64> = engine
            .device_snapshots()
            .iter()
            .map(|d| d.metrics.submitted)
            .collect();
        let depths_before: Vec<usize> = engine
            .device_snapshots()
            .iter()
            .map(|d| d.metrics.queue_depth)
            .collect();
        // A unique shape per request: every one is a cold compile, so the
        // queues stay deep and the routing decision is observable.
        tickets.push(
            engine
                .submit(Request::softmax(random_matrix(
                    4,
                    32 + i,
                    i as u64,
                    -1.0,
                    1.0,
                )))
                .unwrap(),
        );
        let after: Vec<u64> = engine
            .device_snapshots()
            .iter()
            .map(|d| d.metrics.submitted)
            .collect();
        let routed = (0..after.len())
            .find(|&d| after[d] > before[d])
            .expect("exactly one device admitted the request");
        let min_depth = *depths_before.iter().min().unwrap();
        assert!(
            depths_before[routed] <= min_depth + max_batch,
            "submission {i} routed to device {routed} at depth {} while the \
             minimum was {min_depth} (depths {depths_before:?})",
            depths_before[routed]
        );
    }
    engine.run_until_drained();
    for ticket in tickets {
        ticket.wait().unwrap();
    }
    assert_eq!(engine.metrics().completed, 32);
}

/// Row-shard routing: an MHA or quant-GEMM request fanned out across the
/// fleet merges back to exactly the numbers a single device produces, and
/// the merged response reports the fan-out.
#[test]
fn row_sharded_requests_merge_back_to_the_unsharded_numbers() {
    let single = Engine::with_config(GpuArch::a10(), runtime_config(1, 4, 1024));
    let sharded = Engine::with_fleet(
        FleetConfig::homogeneous(GpuArch::a10(), 4, runtime_config(1, 4, 1024))
            .with_routing(RoutingPolicy::RowShard),
    );
    let mha = mha_tiny();
    let mha_request = Request::new(
        Workload::Mha(rf_workloads::MhaConfig {
            q: 8,
            ..mha.clone()
        }),
        RequestInput::Attention {
            q: random_matrix(8, mha.hd, 21, -1.0, 1.0),
            k: random_matrix(mha.kv, mha.hd, 22, -1.0, 1.0),
            v: random_matrix(mha.kv, mha.hd, 23, -1.0, 1.0),
        },
    )
    .unwrap();
    let quant = quant_tiny();
    let quant_request = Request::new(
        Workload::Quant(rf_workloads::QuantGemmConfig {
            m: 8,
            ..quant.clone()
        }),
        RequestInput::QuantGemm {
            a: random_matrix(8, quant.k, 24, -2.0, 2.0),
            w: random_matrix(quant.k, quant.n, 25, -1.0, 1.0),
        },
    )
    .unwrap();
    for request in [mha_request, quant_request] {
        let reference = single
            .submit(request.clone())
            .unwrap()
            .wait()
            .unwrap()
            .output;
        let merged = sharded.submit(request.clone()).unwrap().wait().unwrap();
        let RequestOutput::Matrix(merged_out) = &merged.output else {
            panic!("row-shardable families produce matrices");
        };
        let RequestOutput::Matrix(reference_out) = &reference else {
            panic!("row-shardable families produce matrices");
        };
        assert_eq!(
            (merged_out.rows(), merged_out.cols()),
            (reference_out.rows(), reference_out.cols())
        );
        assert_eq!(
            merged_out,
            reference_out,
            "{}: sharded result diverged from the unsharded reference",
            request.workload.name()
        );
    }
    sharded.run_until_drained();
    // The fan-out is visible in the per-device ledgers: every device served
    // shards of both requests.
    let snapshots = sharded.device_snapshots();
    assert_eq!(snapshots.len(), 4);
    assert!(snapshots.iter().all(|d| d.metrics.completed == 2));
    // Non-shardable work under RowShard falls back to least-loaded and still
    // serves correctly.
    let softmax = Request::softmax(random_matrix(1, 64, 30, -1.0, 1.0));
    let response = sharded.submit(softmax).unwrap().wait().unwrap();
    assert!(response.simulated_us > 0.0);
}

/// Ledger conservation under a concurrent flood into a 4-device fleet with a
/// tight admission budget: every offered submission is accounted exactly once
/// — served, failed, or shed — and the per-device ledgers sum to the fleet's.
#[test]
fn per_device_ledgers_conserve_requests_under_concurrent_flood() {
    let engine = Arc::new(Engine::with_fleet(FleetConfig::homogeneous(
        GpuArch::a10(),
        4,
        runtime_config(1, 2, 4),
    )));
    let threads = 8;
    let per_thread = 32u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut admitted = Vec::new();
                let mut shed = 0u64;
                for i in 0..per_thread {
                    let seed = t * per_thread + i;
                    match engine.submit(Request::softmax(random_matrix(8, 256, seed, -1.0, 1.0))) {
                        Ok(ticket) => admitted.push(ticket),
                        Err(RuntimeError::Overloaded { retry_hint, .. }) => {
                            assert!(retry_hint > std::time::Duration::ZERO);
                            shed += 1;
                        }
                        Err(other) => panic!("unexpected admission error: {other:?}"),
                    }
                }
                let mut served = 0u64;
                for ticket in admitted {
                    ticket.wait().expect("admitted requests complete");
                    served += 1;
                }
                (served, shed)
            })
        })
        .collect();
    let (mut served, mut shed) = (0u64, 0u64);
    for handle in handles {
        let (s, d) = handle.join().expect("flood thread");
        served += s;
        shed += d;
    }
    engine.run_until_drained();
    let offered = threads * per_thread;
    assert_eq!(served + shed, offered, "every offer resolves exactly once");

    // Fleet-level conservation.
    let metrics = engine.metrics();
    assert_eq!(metrics.submitted, served);
    assert_eq!(metrics.completed, served);
    assert_eq!(metrics.shed, shed);
    assert_eq!(metrics.failed, 0);
    assert_eq!(metrics.queue_depth, 0);

    // Per-device conservation: each device's ledger balances on its own, and
    // the device ledgers sum to the fleet ledger.
    let snapshots = engine.device_snapshots();
    assert_eq!(snapshots.len(), 4);
    let mut sum_submitted = 0u64;
    let mut sum_completed = 0u64;
    let mut sum_shed = 0u64;
    for device in &snapshots {
        let m = &device.metrics;
        assert_eq!(
            m.submitted,
            m.completed + m.failed,
            "device {} ledger must balance after drain",
            device.device
        );
        assert_eq!(m.queue_depth, 0);
        sum_submitted += m.submitted;
        sum_completed += m.completed;
        sum_shed += m.shed;
    }
    assert_eq!(sum_submitted, served);
    assert_eq!(sum_completed, served);
    assert_eq!(sum_shed, shed);
    // The flood actually exercised more than one device.
    assert!(
        snapshots.iter().filter(|d| d.metrics.submitted > 0).count() > 1,
        "a concurrent flood against a tiny budget must spill across devices"
    );
}

/// A heterogeneous fleet mixes real tile-VM execution with cost-model
/// accounting: both devices serve, each under its own architecture identity.
#[test]
fn heterogeneous_fleets_mix_backends_and_architectures() {
    let engine = Engine::with_fleet(FleetConfig::heterogeneous(
        vec![
            DeviceSpec::tile_vm(GpuArch::a10()),
            DeviceSpec::cost_model(GpuArch::h800()),
        ],
        runtime_config(1, 4, 1024),
    ));
    let tickets: Vec<_> = (0..16)
        .map(|seed| {
            engine
                .submit(Request::softmax(random_matrix(4, 64, seed, -1.0, 1.0)))
                .unwrap()
        })
        .collect();
    engine.run_until_drained();
    for ticket in tickets {
        let response = ticket.wait().unwrap();
        assert!(response.simulated_us > 0.0);
        // Cost-model devices synthesise zeros; tile-VM devices compute. A
        // softmax row always sums to ~1.0, so the two are distinguishable.
        let RequestOutput::Matrix(m) = &response.output else {
            panic!("softmax produces a matrix");
        };
        let row_sum: f64 = m.as_slice()[..m.cols()].iter().sum();
        if response.device == 0 {
            assert!((row_sum - 1.0).abs() < 1e-9, "tile-VM serves real numbers");
        } else {
            assert_eq!(row_sum, 0.0, "cost-model serves shape-correct zeros");
        }
    }
    let snapshots = engine.device_snapshots();
    assert_eq!(snapshots[0].backend, "tile-vm");
    assert_eq!(snapshots[1].backend, "cost-model");
    assert_eq!(snapshots[0].arch, "NVIDIA A10");
    assert_eq!(snapshots[1].arch, "NVIDIA H800");
    assert_ne!(
        snapshots[0].fingerprint, snapshots[1].fingerprint,
        "different architectures report different capability fingerprints"
    );
    assert_eq!(
        snapshots.iter().map(|d| d.metrics.completed).sum::<u64>(),
        16
    );
}
