//! Smoke test: every `examples/*.rs` target must keep compiling *and* running.
//!
//! Each example is included here as a module via `#[path]`, so `cargo test`
//! exercises the exact source that `cargo run --example <name>` builds — the
//! quickstart paths shown in the README and crate docs cannot silently rot.
//! The examples expose `pub fn main()` (instead of the private default) to
//! make them callable from this harness.

#[path = "../examples/attention_fusion.rs"]
mod attention_fusion;
#[path = "../examples/custom_reduction.rs"]
mod custom_reduction;
#[path = "../examples/fleet_serving.rs"]
mod fleet_serving;
#[path = "../examples/graph_serving.rs"]
mod graph_serving;
#[path = "../examples/moe_routing.rs"]
mod moe_routing;
#[path = "../examples/observability.rs"]
mod observability;
#[path = "../examples/quant_gemm.rs"]
mod quant_gemm;
#[path = "../examples/quickstart.rs"]
mod quickstart;
#[path = "../examples/serving.rs"]
mod serving;
#[path = "../examples/tuning.rs"]
mod tuning;

#[test]
fn quickstart_runs() {
    quickstart::main();
}

#[test]
fn attention_fusion_runs() {
    attention_fusion::main();
}

#[test]
fn custom_reduction_runs() {
    custom_reduction::main();
}

#[test]
fn fleet_serving_runs() {
    fleet_serving::main();
}

#[test]
fn graph_serving_runs() {
    graph_serving::main();
}

#[test]
fn moe_routing_runs() {
    moe_routing::main();
}

#[test]
fn observability_runs() {
    observability::main();
}

#[test]
fn quant_gemm_runs() {
    quant_gemm::main();
}

#[test]
fn serving_runs() {
    serving::main();
}

#[test]
fn tuning_runs() {
    tuning::main();
}
