//! End-to-end tests of the continuous-batching serving front door: the
//! unified [`Submission`] API, iteration-level batching without drain
//! barriers, bounded typed shedding under flood, and lane fairness under
//! sustained high-priority load.

use std::error::Error as _;
use std::sync::Arc;
use std::time::Duration;

use rf_gpusim::GpuArch;
use rf_graph::builders;
use rf_runtime::{
    Engine, Priority, Request, RequestOutput, RuntimeConfig, RuntimeError, Submission,
};
use rf_workloads::{random_matrix, Matrix};

fn engine(workers: usize, max_batch: usize, max_in_flight: usize) -> Engine {
    Engine::with_config(
        GpuArch::a10(),
        RuntimeConfig::builder()
            .workers(workers)
            .max_batch(max_batch)
            .cache_capacity(32)
            .max_in_flight(max_in_flight)
            .build()
            .expect("valid config"),
    )
}

/// The one acceptance-critical behaviour: a request submitted while the
/// engine is busy serving joins a *subsequent* iteration — the stream never
/// needs a drain for new work to make progress.
#[test]
fn requests_join_iterations_mid_flight_without_a_drain_barrier() {
    let engine = engine(1, 8, 1024);
    // A unique shape: iteration 1 is this request alone, and its cold-cache
    // compile (detection, ACRF, lowering, auto-tuning) keeps the single
    // worker busy for a while.
    let first = engine
        .submit(Request::softmax(random_matrix(64, 512, 1, -1.0, 1.0)))
        .expect("first request accepted");
    // Meanwhile 15 identical tiny requests arrive on the open stream.
    let tiny: Vec<_> = (0..15)
        .map(|seed| {
            engine
                .submit(Request::softmax(random_matrix(2, 64, seed, -1.0, 1.0)))
                .expect("tiny request accepted")
        })
        .collect();
    let first = first.wait().expect("first request completes");
    assert_eq!(first.iteration, 1, "the cold request rides iteration 1");
    assert_eq!(first.batch_size, 1, "a unique shape batches alone");

    let served: Vec<_> = tiny
        .into_iter()
        .map(|t| t.wait().expect("tiny request completes"))
        .collect();
    // Every mid-flight submission joined a later iteration of the same
    // still-running stream…
    assert!(
        served.iter().all(|r| r.iteration > first.iteration),
        "mid-flight submissions join subsequent iterations"
    );
    // …and they joined in batches: all 15 were queued while iteration 1 was
    // mid-flight, so the scheduler coalesced them instead of serving 15
    // singleton iterations.
    assert!(
        served.iter().any(|r| r.batch_size > 1),
        "queued same-shape requests coalesce into shared iterations"
    );
    let max_iteration = served.iter().map(|r| r.iteration).max().unwrap();
    assert!(
        max_iteration < 1 + 15,
        "15 batched requests take fewer than 15 iterations (max was {max_iteration})"
    );
    engine.run_until_drained();
    assert_eq!(engine.metrics().completed, 16);
}

/// The unified front door serves every submission kind with numbers that
/// match the whole-graph reference evaluator, and repeated submissions are
/// deterministic.
#[test]
fn unified_submission_front_door_matches_the_reference() {
    let engine = engine(2, 4, 1024);

    // A bare Request and an explicit Submission::workload are the same call.
    let rows = random_matrix(4, 128, 9, -2.0, 2.0);
    let via_request = engine
        .submit(Request::softmax(rows.clone()))
        .unwrap()
        .wait()
        .unwrap();
    let via_submission = engine
        .submit(Submission::workload(Request::softmax(rows)).with_priority(Priority::High))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(via_request.output, via_submission.output);
    assert_eq!(via_submission.priority, Priority::High);

    // A graph through the unified door matches the unfused whole-graph
    // reference, and serving it twice is bit-identical.
    let graph = builders::moe_block(4, 8, 4);
    let inputs = builders::moe_block_inputs(4, 8, 4, 42);
    let reference = graph.evaluate(&inputs).expect("reference evaluates");
    let bindings: Vec<(String, Matrix)> = inputs
        .iter()
        .map(|(name, matrix)| (name.to_string(), matrix.clone()))
        .collect();
    let graph = Arc::new(graph);
    let serve = || {
        engine
            .submit(Submission::graph(Arc::clone(&graph), bindings.clone()))
            .expect("graph accepted")
            .wait()
            .expect("graph served")
    };
    let response = serve();
    let stats = response.graph.expect("graph responses carry stats");
    assert!(stats.fused_regions >= 1);
    let RequestOutput::Tensors(outputs) = &response.output else {
        panic!("graph submissions resolve to tensor outputs");
    };
    assert_eq!(outputs.len(), reference.len());
    for (got, want) in outputs.iter().zip(&reference) {
        assert!(
            got.max_abs_diff(want) <= 1e-9,
            "unified door matches the reference"
        );
    }
    let again = serve();
    let RequestOutput::Tensors(second) = &again.output else {
        panic!("graph submissions resolve to tensor outputs");
    };
    assert_eq!(outputs, second, "graph serving is deterministic");
}

/// Flooding past the in-flight budget sheds gracefully: every rejection is
/// the typed `Overloaded` error with a usable retry hint and a source chain,
/// the shed count is bounded by the flood, and everything admitted still
/// completes.
#[test]
fn flood_past_the_budget_sheds_typed_and_bounded() {
    const FLOOD: usize = 64;
    const BUDGET: usize = 4;
    let engine = engine(1, 2, BUDGET);
    let mut admitted = Vec::new();
    let mut sheds = 0usize;
    for seed in 0..FLOOD as u64 {
        match engine.submit(Request::softmax(random_matrix(8, 256, seed, -1.0, 1.0))) {
            Ok(ticket) => admitted.push(ticket),
            Err(err) => {
                // Typed, stable, chained: match on the variant, not a string.
                let RuntimeError::Overloaded { retry_hint, .. } = &err else {
                    panic!("floods shed with Overloaded, got {err}");
                };
                assert_eq!(err.code(), "overloaded");
                assert!(*retry_hint > Duration::ZERO, "retry hints are usable");
                let source = err.source().expect("Overloaded chains its source");
                assert!(
                    source.to_string().contains(&format!("of {BUDGET} slots")),
                    "the source names the exhausted budget: {source}"
                );
                sheds += 1;
            }
        }
    }
    assert!(
        sheds > 0,
        "a {BUDGET}-slot budget must shed a {FLOOD}-flood"
    );
    assert!(
        sheds <= FLOOD - BUDGET,
        "at least the budget's worth is admitted"
    );
    assert_eq!(
        admitted.len() + sheds,
        FLOOD,
        "every submission is accounted"
    );
    for ticket in admitted {
        ticket.wait().expect("admitted requests complete");
    }
    let metrics = engine.metrics();
    assert_eq!(metrics.shed, sheds as u64, "sheds are counted in metrics");
    assert_eq!(metrics.completed as usize + sheds, FLOOD);
}

/// A low-priority submission completes under sustained high-priority load:
/// the deficit-weighted lanes give the backlogged low lane credit every
/// iteration, so it is never starved indefinitely.
#[test]
fn low_priority_work_completes_under_sustained_high_priority_load() {
    let engine = engine(1, 2, 1024);
    // One low-priority straggler…
    let low = engine
        .submit(
            Submission::workload(Request::softmax(random_matrix(2, 64, 999, -1.0, 1.0)))
                .with_priority(Priority::Low),
        )
        .expect("low-priority request accepted");
    // …behind a sustained high-priority barrage of 48 requests.
    let high: Vec<_> = (0..48)
        .map(|seed| {
            engine
                .submit(
                    Submission::workload(Request::softmax(random_matrix(4, 128, seed, -1.0, 1.0)))
                        .with_priority(Priority::High),
                )
                .expect("high-priority request accepted")
        })
        .collect();
    // The low request must complete within a bounded wait even though the
    // high lane outweighs it 4:1 — starvation would time this out.
    let low = low
        .wait_timeout(Duration::from_secs(60))
        .expect("low-priority work is not starved")
        .expect("low-priority work completes");
    assert_eq!(low.priority, Priority::Low);
    for ticket in high {
        ticket.wait().expect("high-priority requests complete");
    }
    let metrics = engine.metrics();
    let lane = |name: &str| {
        metrics
            .lanes
            .iter()
            .find(|l| l.lane == name)
            .expect("lane snapshot present")
    };
    assert_eq!(lane("high").completed, 48);
    assert_eq!(lane("low").completed, 1);
}
