//! Integration tests for the serving runtime: concurrent submission of mixed
//! workloads, single-threaded reference agreement, and plan-cache accounting.
//!
//! The central claim: with S submitter threads racing over W distinct
//! workload shapes, every request completes with the same numbers a
//! single-threaded run produces, and the compiler pipeline runs **exactly
//! once per distinct `(workload, arch)` pair** — concurrent first requests
//! for one shape are deduplicated onto a single compilation (no lock is held
//! across compilation or kernel execution, so this is also a liveness test).

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

use redfuser::codegen::Workload;
use redfuser::gpusim::GpuArch;
use redfuser::runtime::{execute_reference, Engine, Request, RequestInput, RuntimeConfig, Ticket};
use redfuser::workloads::{
    inertia_tiny, mha_tiny, mla_tiny, moe_tiny, quant_tiny, random_matrix, random_vec,
    variance_tiny,
};

/// The mixed request set one submitter thread sends: two softmax shapes, an
/// MHA slice and an MoE routing call, each with thread-specific data.
fn requests_for_thread(thread: u64) -> Vec<Request> {
    let seed = thread * 100;
    let mha = mha_tiny();
    let moe = moe_tiny();
    vec![
        Request::softmax(random_matrix(4, 64, seed, -2.0, 2.0)),
        Request::softmax(random_matrix(2, 128, seed + 1, -2.0, 2.0)),
        Request::new(
            Workload::Mha(mha.clone()),
            RequestInput::Attention {
                q: random_matrix(mha.q, mha.hd, seed + 2, -1.0, 1.0),
                k: random_matrix(mha.kv, mha.hd, seed + 3, -1.0, 1.0),
                v: random_matrix(mha.kv, mha.hd, seed + 4, -1.0, 1.0),
            },
        )
        .expect("tiny MHA request is valid"),
        Request::new(
            Workload::Moe(moe.clone()),
            RequestInput::Routing {
                x: random_matrix(8, moe.hd, seed + 5, -1.0, 1.0),
                w: random_matrix(moe.hd, moe.en, seed + 6, -1.0, 1.0),
            },
        )
        .expect("tiny MoE request is valid"),
    ]
}

#[test]
fn concurrent_mixed_workloads_complete_and_compile_once_per_shape() {
    const SUBMITTERS: u64 = 6;
    let engine = Arc::new(Engine::with_config(
        GpuArch::a10(),
        RuntimeConfig::builder()
            .workers(4)
            .max_batch(8)
            .cache_capacity(32)
            .build()
            .expect("valid config"),
    ));

    // Phase 1: S threads race to submit the same workload mix (with
    // per-thread tensor data) all at once.
    let submitters: Vec<_> = (0..SUBMITTERS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                let requests = requests_for_thread(t);
                let tickets: Vec<Ticket> = requests
                    .iter()
                    .map(|r| engine.submit(r.clone()).expect("engine accepts requests"))
                    .collect();
                (requests, tickets)
            })
        })
        .collect();
    let submitted: Vec<_> = submitters.into_iter().map(|t| t.join().unwrap()).collect();
    engine.run_until_drained();

    // Phase 2: every request completed, and matches the single-threaded
    // unfused reference execution of the same tensors.
    let mut distinct: HashSet<Workload> = HashSet::new();
    let mut completed = 0u64;
    for (requests, tickets) in submitted {
        for (request, ticket) in requests.iter().zip(tickets) {
            let result = ticket.wait().expect("request must complete");
            let oracle = execute_reference(&request.workload, &request.input);
            assert!(
                result.output.approx_eq(&oracle, 1e-9),
                "{}: concurrent result diverged from single-threaded reference",
                request.workload.name()
            );
            assert!(result.simulated_us.is_finite() && result.simulated_us > 0.0);
            assert!(result.batch_size >= 1);
            distinct.insert(request.workload.clone());
            completed += 1;
        }
    }
    assert_eq!(completed, SUBMITTERS * 4);
    assert_eq!(distinct.len(), 4);

    // Phase 3: cache accounting — exactly one miss (one compilation) per
    // distinct (workload, arch) pair, everything else hits.
    let stats = engine.cache_stats();
    assert_eq!(
        stats.misses,
        distinct.len() as u64,
        "each distinct (workload, arch) pair must compile exactly once"
    );
    assert_eq!(stats.entries, distinct.len());
    assert_eq!(stats.evictions, 0);
    let metrics = engine.metrics();
    assert_eq!(metrics.completed, completed);
    assert_eq!(metrics.queue_depth, 0);
    assert!(metrics.p99_us >= metrics.p50_us);
    // The cache is consulted once per batch: every lookup beyond the four
    // compiling ones must hit.
    assert_eq!(stats.hits, metrics.batches - distinct.len() as u64);
}

#[test]
fn engine_serves_every_workload_family_from_interpreted_plans() {
    // All six families flow through one path: the cached `CompiledKernel`'s
    // tile program interpreted on the VM. Each family's served output must
    // match the unfused reference, each distinct workload compiles exactly
    // once, and the metrics report a breakdown for every class.
    let mha = mha_tiny();
    let mla = mla_tiny();
    let moe = moe_tiny();
    let quant = quant_tiny();
    let var = variance_tiny();
    let inertia = inertia_tiny();
    let requests: Vec<Request> = vec![
        Request::softmax(random_matrix(4, 64, 30, -2.0, 2.0)),
        Request::new(
            Workload::Mha(mha.clone()),
            RequestInput::Attention {
                q: random_matrix(mha.q, mha.hd, 31, -1.0, 1.0),
                k: random_matrix(mha.kv, mha.hd, 32, -1.0, 1.0),
                v: random_matrix(mha.kv, mha.hd, 33, -1.0, 1.0),
            },
        )
        .unwrap(),
        Request::new(
            Workload::Mla(mla.clone()),
            RequestInput::Attention {
                q: random_matrix(1, mla.qk_dim(), 34, -1.0, 1.0),
                k: random_matrix(mla.kv, mla.qk_dim(), 35, -1.0, 1.0),
                v: random_matrix(mla.kv, mla.hd, 36, -1.0, 1.0),
            },
        )
        .unwrap(),
        Request::new(
            Workload::Moe(moe.clone()),
            RequestInput::Routing {
                x: random_matrix(6, moe.hd, 37, -1.0, 1.0),
                w: random_matrix(moe.hd, moe.en, 38, -1.0, 1.0),
            },
        )
        .unwrap(),
        Request::new(
            Workload::Quant(quant.clone()),
            RequestInput::QuantGemm {
                a: random_matrix(4, quant.k, 39, -2.0, 2.0),
                w: random_matrix(quant.k, quant.n, 40, -1.0, 1.0),
            },
        )
        .unwrap(),
        Request::new(
            Workload::Variance(var.clone()),
            RequestInput::Rows(random_matrix(3, var.l, 41, -2.0, 2.0)),
        )
        .unwrap(),
        Request::new(
            Workload::Inertia(inertia.clone()),
            RequestInput::Inertia {
                masses: random_vec(48, 42, 0.1, 2.0),
                positions: random_matrix(48, inertia.dim, 43, -1.0, 1.0),
            },
        )
        .unwrap(),
    ];
    let engine = Engine::with_config(
        GpuArch::a10(),
        RuntimeConfig::builder()
            .workers(3)
            .max_batch(4)
            .cache_capacity(16)
            .build()
            .expect("valid config"),
    );
    let tickets: Vec<Ticket> = requests
        .iter()
        .map(|r| engine.submit(r.clone()).unwrap())
        .collect();
    engine.run_until_drained();
    for (request, ticket) in requests.iter().zip(tickets) {
        let result = ticket.wait().expect("request completes");
        let oracle = execute_reference(&request.workload, &request.input);
        if let Workload::Quant(_) = request.workload {
            // FP8 quantisation under provisional tile scales is only
            // noise-floor-close to the unfused oracle (see
            // tests/differential.rs); don't couple this test to the tuner
            // happening to pick a whole-row tile.
            use redfuser::runtime::RequestOutput;
            let (RequestOutput::Matrix(a), RequestOutput::Matrix(e)) = (&result.output, &oracle)
            else {
                panic!("quant outputs are matrices");
            };
            let peak = e.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs()));
            assert!(a.max_abs_diff(e) <= 0.05 * peak + 1e-9);
        } else {
            assert!(
                result.output.approx_eq(&oracle, 1e-9),
                "{}: interpreted plan diverged from reference",
                request.workload.name()
            );
        }
    }
    assert_eq!(engine.cache_stats().misses, 7, "one compile per workload");
    let metrics = engine.metrics();
    let classes: Vec<&str> = metrics.classes.iter().map(|c| c.class).collect();
    assert_eq!(
        classes,
        ["inertia", "mha", "mla", "moe", "quant", "softmax", "variance"]
    );
    assert!(metrics.classes.iter().all(|c| c.completed >= 1));
}

#[test]
fn resubmitting_after_drain_reuses_cached_plans() {
    let engine = Engine::with_config(
        GpuArch::h800(),
        RuntimeConfig::builder()
            .workers(2)
            .max_batch(4)
            .cache_capacity(8)
            .build()
            .expect("valid config"),
    );
    for round in 0..3u64 {
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| {
                engine
                    .submit(Request::softmax(random_matrix(
                        2,
                        96,
                        round * 10 + i,
                        -1.0,
                        1.0,
                    )))
                    .unwrap()
            })
            .collect();
        engine.run_until_drained();
        for ticket in tickets {
            let result = ticket.wait().unwrap();
            // Only the very first batch of round 0 may compile.
            if round > 0 {
                assert!(result.cache_hit, "later rounds must be served from cache");
            }
        }
    }
    assert_eq!(engine.cache_stats().misses, 1);
    assert_eq!(engine.metrics().completed, 12);
}

#[test]
fn distinct_architectures_are_distinct_cache_keys() {
    let a10 = Engine::new(GpuArch::a10());
    let h800 = Engine::new(GpuArch::h800());
    for engine in [&a10, &h800] {
        engine
            .submit(Request::softmax(random_matrix(2, 48, 5, -1.0, 1.0)))
            .unwrap()
            .wait()
            .unwrap();
    }
    // Each engine compiled the shape for its own architecture.
    assert_eq!(a10.cache_stats().misses, 1);
    assert_eq!(h800.cache_stats().misses, 1);
}
